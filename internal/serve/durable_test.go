package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/wal"
)

func newScheduler(t *testing.T) *scheduler.Scheduler {
	t.Helper()
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: []float64{4, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// recoverDir replays a WAL directory into a fresh scheduler, as a restart
// of amf-server -data-dir would.
func recoverDir(t *testing.T, dir string) (*scheduler.Scheduler, *wal.Recovery, wal.ReplayStats) {
	t.Helper()
	l, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	sc := newScheduler(t)
	st, err := rec.Replay(sc)
	if err != nil {
		t.Fatal(err)
	}
	return sc, rec, st
}

// assertSameAllocation solves both controllers and requires identical
// per-job aggregate allocations to 1e-9 of the instance scale.
func assertSameAllocation(t *testing.T, tag string, got, want *scheduler.Scheduler) {
	t.Helper()
	gotIn, gotSh, err := got.Resolve()
	if err != nil {
		t.Fatalf("%s: resolving recovered state: %v", tag, err)
	}
	wantIn, wantSh, err := want.Resolve()
	if err != nil {
		t.Fatalf("%s: resolving reference state: %v", tag, err)
	}
	if len(gotSh) != len(wantSh) {
		t.Fatalf("%s: %d jobs recovered, want %d", tag, len(gotSh), len(wantSh))
	}
	tol := 1e-9 * wantIn.Scale()
	if tol == 0 {
		tol = 1e-12
	}
	for id, wantRow := range wantSh {
		gotRow, ok := gotSh[id]
		if !ok {
			t.Fatalf("%s: job %q missing after recovery", tag, id)
		}
		var gotAgg, wantAgg float64
		for s := range wantRow {
			gotAgg += gotRow[s]
			wantAgg += wantRow[s]
		}
		if math.Abs(gotAgg-wantAgg) > tol {
			t.Fatalf("%s: job %q aggregate %g after recovery, want %g (tol %g)",
				tag, id, gotAgg, wantAgg, tol)
		}
	}
	alloc := &core.Allocation{Inst: gotIn, Share: make([][]float64, len(gotIn.JobName))}
	for i, id := range gotIn.JobName {
		alloc.Share[i] = gotSh[id]
	}
	if err := alloc.CheckFeasible(1e-6 * gotIn.Scale()); err != nil {
		t.Fatalf("%s: recovered allocation infeasible: %v", tag, err)
	}
}

func newDurableEngine(t *testing.T, dir string, cfg Config) *Engine {
	t.Helper()
	l, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := newScheduler(t)
	if _, err := rec.Replay(sc); err != nil {
		t.Fatal(err)
	}
	cfg.Log = l
	eng, err := New(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	return eng
}

// TestEngineDurableCrashReplay is the core durability contract: hard-crash
// the engine (no seal, no final snapshot) and a restart from the data
// directory reproduces the exact pre-crash allocation.
func TestEngineDurableCrashReplay(t *testing.T) {
	dir := t.TempDir()
	eng := newDurableEngine(t, dir, Config{})
	ctx := context.Background()

	if err := eng.AddQueue(ctx, "prod", 2); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddJob(ctx, "a", 1, []float64{4, 0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddJobInQueue(ctx, "prod", "p", 1, []float64{0, 4, 0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddJobs(ctx, []scheduler.JobSpec{
		{ID: "b1", Demand: []float64{0, 0, 4}},
		{ID: "b2", Demand: []float64{1, 1, 1}, Weight: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.UpdateWeight(ctx, "a", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ReportProgress(ctx, "b1", []float64{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := eng.RemoveJob(ctx, "b2"); err != nil {
		t.Fatal(err)
	}
	preCrash := eng.Snapshot()

	eng.Crash()
	if err := eng.AddJob(ctx, "late", 1, []float64{1, 0, 0}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("mutation after crash = %v, want ErrClosed", err)
	}

	mirror := newScheduler(t)
	if err := mirror.Restore(preCrash); err != nil {
		t.Fatal(err)
	}
	recovered, rec, st := recoverDir(t, dir)
	if rec.SkippedRecords != 0 || st.Failed != 0 {
		t.Fatalf("clean crash recovery skipped records: rec=%+v replay=%+v", rec, st)
	}
	if !st.Restored && st.Mutations == 0 {
		t.Fatalf("nothing recovered: %+v", st)
	}
	assertSameAllocation(t, "crash-replay", recovered, mirror)
}

// TestEngineGracefulCloseFoldsSnapshot: Close drains, compacts and seals,
// so a restart recovers everything from the snapshot with an empty tail.
func TestEngineGracefulCloseFoldsSnapshot(t *testing.T) {
	dir := t.TempDir()
	eng := newDurableEngine(t, dir, Config{})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := eng.AddJob(ctx, fmt.Sprintf("j%d", i), 1, []float64{1, 1, 0}, nil); err != nil {
			t.Fatal(err)
		}
	}
	preClose := eng.Snapshot()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	mirror := newScheduler(t)
	if err := mirror.Restore(preClose); err != nil {
		t.Fatal(err)
	}
	recovered, rec, st := recoverDir(t, dir)
	if !st.Restored {
		t.Fatalf("graceful close left no snapshot: %+v", st)
	}
	if st.Batches != 0 || len(rec.Records) != 0 {
		t.Fatalf("graceful close left a record tail: rec=%d replay=%+v", len(rec.Records), st)
	}
	assertSameAllocation(t, "graceful-close", recovered, mirror)
}

// TestEngineReplayAfterCrashProperty is the acceptance property test:
// crash at EVERY batch boundary — both a plain crash after the k-th
// commit and a torn WAL write ON the k-th commit — and require the
// recovered allocation to equal the acknowledged pre-crash allocation to
// 1e-9 of the instance scale, with torn tails skipped, not fatal.
func TestEngineReplayAfterCrashProperty(t *testing.T) {
	// One mutation per batch (MaxBatch 1), so every mutation is a batch
	// boundary. The stream mixes every loggable op kind.
	type step func(ctx context.Context, e *Engine) error
	steps := []step{
		func(ctx context.Context, e *Engine) error {
			return e.AddQueue(ctx, "q", 2)
		},
		func(ctx context.Context, e *Engine) error {
			return e.AddJob(ctx, "a", 1, []float64{4, 0, 0}, []float64{16, 0, 0})
		},
		func(ctx context.Context, e *Engine) error {
			return e.AddJobInQueue(ctx, "q", "b", 1, []float64{0, 4, 0}, nil)
		},
		func(ctx context.Context, e *Engine) error {
			return e.AddJobs(ctx, []scheduler.JobSpec{
				{ID: "c1", Demand: []float64{0, 0, 4}},
				{ID: "c2", Demand: []float64{2, 2, 2}},
			})
		},
		func(ctx context.Context, e *Engine) error {
			return e.UpdateWeight(ctx, "a", 5)
		},
		func(ctx context.Context, e *Engine) error {
			_, err := e.ReportProgress(ctx, "a", []float64{2, 0, 0})
			return err
		},
		func(ctx context.Context, e *Engine) error {
			return e.RemoveJob(ctx, "c2")
		},
		func(ctx context.Context, e *Engine) error {
			return e.AddJob(ctx, "d", 2, []float64{1, 1, 1}, nil)
		},
	}

	for fault := 0; fault <= len(steps); fault++ {
		for _, torn := range []bool{false, true} {
			if fault == len(steps) && torn {
				continue // no commit to tear after the last step
			}
			tag := fmt.Sprintf("fault=%d torn=%v", fault, torn)
			dir := t.TempDir()
			writes := 0
			opts := wal.Options{}
			if torn {
				// The fault-th record append tears: half the frame lands,
				// then the device dies. Everything after is fail-stopped.
				opts.Write = func(f *os.File, p []byte) (int, error) {
					writes++
					if writes == fault+1 {
						n, _ := f.Write(p[:len(p)/2])
						return n, errors.New("injected torn write")
					}
					return f.Write(p)
				}
			}
			l, rec, err := wal.Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			sc := newScheduler(t)
			if _, err := rec.Replay(sc); err != nil {
				t.Fatal(err)
			}
			eng, err := New(sc, Config{MaxBatch: 1, Log: l})
			if err != nil {
				t.Fatal(err)
			}

			// The mirror applies exactly the acknowledged mutations.
			mirror := newScheduler(t)
			mirrorEng, err := New(mirror, Config{MaxBatch: 1})
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			stop := len(steps)
			if !torn {
				stop = fault
			}
			for i, stepFn := range steps[:stop] {
				err := stepFn(ctx, eng)
				if torn && i >= fault {
					// The faulted commit and everything after fail-stop.
					if !errors.Is(err, ErrWALFailed) {
						t.Fatalf("%s: step %d err = %v, want ErrWALFailed", tag, i, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s: step %d: %v", tag, i, err)
				}
				if merr := stepFn(ctx, mirrorEng); merr != nil {
					t.Fatalf("%s: mirror step %d: %v", tag, i, merr)
				}
			}

			eng.Crash()
			recovered, recov, replay := recoverDir(t, dir)
			if torn && fault < stop && recov.SkippedRecords != 1 {
				t.Fatalf("%s: SkippedRecords = %d, want the torn record dropped", tag, recov.SkippedRecords)
			}
			if replay.Failed != 0 {
				t.Fatalf("%s: %d replay failures", tag, replay.Failed)
			}
			assertSameAllocation(t, tag, recovered, mirror)
			_ = mirrorEng.Close()
		}
	}
}

// TestEngineWALFailStop: after a group-commit fsync failure nothing is
// acknowledged — the failing batch and all later mutations report
// ErrWALFailed, the published snapshot stays at the last durable state,
// and reads keep working.
func TestEngineWALFailStop(t *testing.T) {
	dir := t.TempDir()
	fail := false
	l, _, err := wal.Open(dir, wal.Options{
		Sync: func(f *os.File) error {
			if fail {
				return errors.New("injected fsync failure")
			}
			return f.Sync()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := newScheduler(t)
	reg := obs.NewRegistry()
	eng, err := New(sc, Config{Log: l, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	ctx := context.Background()

	if err := eng.AddJob(ctx, "ok", 1, []float64{1, 1, 0}, nil); err != nil {
		t.Fatal(err)
	}
	version := eng.Current().Version

	fail = true
	if err := eng.AddJob(ctx, "doomed", 1, []float64{0, 1, 1}, nil); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("mutation with failing fsync = %v, want ErrWALFailed", err)
	}
	fail = false
	if err := eng.AddJob(ctx, "after", 1, []float64{1, 0, 1}, nil); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("mutation after WAL failure = %v, want fail-stop ErrWALFailed", err)
	}
	if v := eng.Current().Version; v != version {
		t.Fatalf("snapshot version moved %d -> %d across failed commits", version, v)
	}
	if sh, err := eng.Shares(ctx, "ok"); err != nil || len(sh) != 3 {
		t.Fatalf("read after WAL failure = %v, %v", sh, err)
	}
	if got := reg.Counter("wal.errors_total").Value(); got == 0 {
		t.Fatal("wal.errors_total not incremented")
	}

	// Recovery is bounded by the failed batch: the acknowledged mutation is
	// always present, everything fail-stopped after the failure never was.
	// (The unacknowledged "doomed" record may survive — its bytes were
	// written before the fsync failed — which is the usual WAL contract:
	// recovered state is a superset of acknowledged state up to the failed
	// batch, never beyond it.)
	eng.Crash()
	recovered, _, _ := recoverDir(t, dir)
	if _, err := recovered.Shares("ok"); err != nil {
		t.Fatalf("acknowledged job lost in recovery: %v", err)
	}
	if _, err := recovered.Shares("after"); !errors.Is(err, scheduler.ErrUnknownJob) {
		t.Fatalf("fail-stopped job leaked into recovery: %v", err)
	}
}

// TestEngineWALCompaction: a size-triggered compaction folds the log
// mid-stream and recovery still reproduces the full state.
func TestEngineWALCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	// A few hundred bytes: every couple of commits triggers a fold.
	eng := newDurableEngine(t, dir, Config{CompactBytes: 256, Metrics: reg})
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := eng.AddJob(ctx, fmt.Sprintf("j%d", i), 1+float64(i%3), []float64{1, 1, 1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("wal.compactions_total").Value(); got == 0 {
		t.Fatal("no compaction despite tiny CompactBytes")
	}
	preCrash := eng.Snapshot()
	eng.Crash()

	mirror := newScheduler(t)
	if err := mirror.Restore(preCrash); err != nil {
		t.Fatal(err)
	}
	recovered, _, st := recoverDir(t, dir)
	if !st.Restored {
		t.Fatalf("recovery found no snapshot after compactions: %+v", st)
	}
	assertSameAllocation(t, "compaction", recovered, mirror)
}

// TestEngineIntervalCompaction: the timer path also folds the log.
func TestEngineIntervalCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	eng := newDurableEngine(t, dir, Config{
		CompactInterval: 10 * time.Millisecond,
		Metrics:         reg,
	})
	ctx := context.Background()
	if err := eng.AddJob(ctx, "a", 1, []float64{1, 1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("wal.compactions_total").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval compaction never ran")
		}
		// Keep the committer loop iterating so it notices the tick.
		if err := eng.UpdateWeight(ctx, "a", 1+float64(time.Now().UnixNano()%7)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEngineRestoreQuiesces is the regression test for the restore path:
// concurrent mutators race against snapshot restores under -race, and
// every restore commits alone (the exclusive counter matches), with the
// engine still consistent afterwards.
func TestEngineRestoreQuiesces(t *testing.T) {
	reg := obs.NewRegistry()
	eng, _ := newEngine(t, Config{MaxBatch: 16, BatchWindow: 100 * time.Microsecond, Metrics: reg})
	ctx := context.Background()

	// A base state to restore into the engine repeatedly.
	base := newScheduler(t)
	if err := base.AddJob("base", 1, []float64{1, 1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	baseSnap := base.Snapshot()

	const writers = 4
	const restores = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				// Adds race restores, so duplicates (after a restore that
				// re-seeded state) and unknown-job errors are expected;
				// anything else is a bug.
				err := eng.AddJob(ctx, id, 1, []float64{1, 0, 1}, nil)
				if err != nil && !errors.Is(err, scheduler.ErrDuplicateJob) {
					t.Error(err)
					return
				}
				_ = eng.UpdateWeight(ctx, id, 2)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < restores; i++ {
			if err := eng.Restore(ctx, baseSnap); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if got := reg.Counter("engine.exclusive_commits_total").Value(); got != restores {
		t.Fatalf("exclusive_commits_total = %d, want %d", got, restores)
	}
	// The engine is still consistent: base job present, snapshot readable.
	if _, err := eng.Shares(ctx, "base"); err != nil {
		t.Fatalf("base job lost after concurrent restores: %v", err)
	}
	snap := eng.Current()
	if err := snap.Allocation().CheckFeasible(1e-6 * snap.Inst.Scale()); err != nil {
		t.Fatalf("post-restore allocation infeasible: %v", err)
	}
}

// TestEngineContextCancellation: a queued mutation whose context expires
// before the committer takes it is abandoned — the submitter unblocks with
// the context error, the mutation is never applied, and the cancellation
// counter ticks.
func TestEngineContextCancellation(t *testing.T) {
	reg := obs.NewRegistry()
	// A long window holds the committer in gather once the first mutation
	// arrives, keeping the second one queued long enough to cancel.
	eng, _ := newEngine(t, Config{MaxBatch: 64, BatchWindow: 2 * time.Second, Metrics: reg})
	ctx := context.Background()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := eng.AddJob(ctx, "window-opener", 1, []float64{1, 0, 0}, nil); err != nil {
			t.Error(err)
		}
	}()
	// Wait until the committer is inside the batch window.
	deadline := time.Now().Add(time.Second)
	for eng.Current().Version < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := eng.AddJob(cctx, "cancelled", 1, []float64{0, 1, 0}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued-then-cancelled mutation err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %v, should not wait out the batch window", elapsed)
	}
	wg.Wait()

	if _, err := eng.Shares(ctx, "cancelled"); !errors.Is(err, scheduler.ErrUnknownJob) {
		t.Fatalf("cancelled mutation was applied: Shares err = %v", err)
	}
	if _, err := eng.Shares(ctx, "window-opener"); err != nil {
		t.Fatalf("batched mutation lost: %v", err)
	}
	if got := reg.Counter("engine.cancelled_mutations_total").Value(); got == 0 {
		t.Fatal("cancelled_mutations_total not incremented")
	}

	// Pre-cancelled contexts never enqueue at all.
	done, derr := context.WithCancel(ctx)
	derr()
	if err := eng.AddJob(done, "never", 1, []float64{1, 1, 1}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled mutation err = %v, want Canceled", err)
	}
}

// TestEngineBulkAddAtomic: AddJobs is one commit — one solve — and
// all-or-nothing on validation failure.
func TestEngineBulkAddAtomic(t *testing.T) {
	eng, sc := newEngine(t, Config{})
	ctx := context.Background()
	preSolves := sc.Stats().Solves

	if err := eng.AddJobs(ctx, []scheduler.JobSpec{
		{ID: "a", Demand: []float64{1, 0, 0}},
		{ID: "b", Demand: []float64{0, 1, 0}},
		{ID: "c", Demand: []float64{0, 0, 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := sc.Stats().Solves - preSolves; got != 1 {
		t.Fatalf("bulk add solved %d times, want 1", got)
	}

	// One bad item rejects the whole batch.
	err := eng.AddJobs(ctx, []scheduler.JobSpec{
		{ID: "d", Demand: []float64{1, 1, 1}},
		{ID: "a", Demand: []float64{1, 0, 0}}, // duplicate
	})
	var be *scheduler.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("bulk add with duplicate err = %v, want *BatchError", err)
	}
	if be.Errs[0] != nil || !errors.Is(be.Errs[1], scheduler.ErrDuplicateJob) {
		t.Fatalf("batch error items = %v", be.Errs)
	}
	if _, err := eng.Shares(ctx, "d"); !errors.Is(err, scheduler.ErrUnknownJob) {
		t.Fatalf("rejected batch leaked job d: %v", err)
	}
}

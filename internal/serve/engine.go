// Package serve is the concurrent serving engine around the scheduler
// controller: the subsystem that lets one allocator instance absorb heavy
// mutation and read traffic without the solver sitting on every request's
// critical path.
//
// Three mechanisms do the work:
//
//   - Group-committed mutations. Mutations (add/remove/progress/weight,
//     queue declarations, bulk registrations, snapshot restores) are
//     enqueued to a single committer goroutine, which drains whatever is
//     pending — bounded by MaxBatch and optionally stretched by
//     BatchWindow — applies the whole batch to the scheduler, and
//     re-solves ONCE for the batch instead of once per mutation. Callers
//     block until their batch commits, so a mutation's success/error is
//     returned synchronously and a subsequent read observes the write
//     (read-your-writes). Submission is context-aware: a caller whose
//     context is cancelled while its mutation is still queued abandons
//     the commit — the committer skips the op instead of applying it.
//
//   - RCU-style allocation snapshots. Every commit publishes an immutable,
//     version-numbered AllocSnapshot through an atomic.Pointer. Reads
//     (Current, Allocation, Shares) load the pointer and walk the frozen
//     data — no lock, no contention with writers, never blocked behind a
//     solve.
//
//   - Write-ahead durability (optional, Config.Log). After a batch is
//     applied, its successful mutations are appended to the WAL as ONE
//     record and fsynced ONCE — the batch window that amortizes the solve
//     amortizes the fsync too — before the snapshot is published and the
//     callers are released. The committer folds the log into a state
//     snapshot (wal.Log.Compact) when it grows past CompactBytes or every
//     CompactInterval, whichever comes first. A WAL write or fsync
//     failure is fail-stop for mutations: acknowledged state and durable
//     state would otherwise diverge, so the engine rejects further
//     mutations with ErrWALFailed while reads keep serving the last
//     published snapshot.
//
// Snapshot restores (Restore) are exclusive: the committer quiesces the
// batch pipeline and commits a restore as a batch of one, so a state swap
// never interleaves with other mutations inside a commit.
//
// The engine optionally instruments itself into an obs.Registry: solver
// latency, commit latency, batch sizes, mutation/read counters, the
// published snapshot version, the solver's decomposition telemetry, and —
// with a WAL attached — append/fsync latency histograms, log depth
// gauges and compaction counters.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/policy"
	"repro/internal/scheduler"
	"repro/internal/wal"
)

// ErrClosed is returned for mutations submitted after Close.
var ErrClosed = errors.New("serve: engine closed")

// ErrWALFailed is returned for mutations after a write-ahead-log append,
// fsync or compaction failure. The engine fail-stops mutations at that
// point: anything acknowledged afterwards could not be recovered, so
// nothing further is acknowledged. Reads keep serving the last published
// snapshot, which matches the durable state.
var ErrWALFailed = errors.New("serve: write-ahead log failed, engine is read-only")

// Config parameterizes an Engine.
type Config struct {
	// MaxBatch caps the number of mutations committed per solve.
	// Values <= 1 disable batching: every mutation solves individually
	// (the "unbatched" baseline). Default 256.
	MaxBatch int
	// BatchWindow stretches batch collection: after the first mutation of
	// a batch arrives, the committer waits up to this long for more before
	// solving. Zero (the default) is opportunistic batching — the
	// committer drains only what is already queued, adding no latency.
	BatchWindow time.Duration
	// QueueDepth is the mutation queue's buffer (default 256).
	QueueDepth int
	// Metrics, when set, receives engine instrumentation (see package
	// comment). Nil disables it.
	Metrics *obs.Registry
	// Log, when set, makes every commit durable: the batch's successful
	// mutations are appended and fsynced as one record before callers are
	// released. The engine assumes ownership: Close seals the log after a
	// final compaction.
	Log *wal.Log
	// CompactBytes triggers a log compaction once the record tail grows
	// past this many bytes (default 4 MiB). Only meaningful with Log.
	CompactBytes int64
	// CompactInterval additionally triggers periodic compaction (zero
	// disables the timer; size-based compaction still runs).
	CompactInterval time.Duration
	// Traces, when set, enables commit tracing: every commit builds a
	// span.Trace (queue wait, apply, WAL encode/append/fsync, solver
	// stages, publish) and records it into this ring. Nil disables tracing;
	// the per-stage histograms in Metrics are fed either way.
	Traces *span.Recorder
	// SlowTraces, when set alongside Traces, additionally retains the N
	// slowest commits of the recorder's window (GET /v1/traces?slow=1), so
	// slow-commit evidence survives main-ring churn. Nil disables it.
	SlowTraces *span.SlowRecorder
	// Logger, when set, receives structured engine logs (currently slow
	// commits; see SlowCommit). Nil disables logging.
	Logger *slog.Logger
	// SlowCommit is the whole-commit latency threshold above which the
	// engine logs a warning with the commit's trace ID, sequence number and
	// per-stage timings. Zero disables slow-commit logging.
	SlowCommit time.Duration
}

// AllocSnapshot is one immutable published allocation: everything a read
// needs, frozen at commit time. Fields must not be mutated by readers.
type AllocSnapshot struct {
	// Version increases by one per commit; readers can use it to detect
	// staleness or order observations.
	Version uint64
	// Policy is the wire name of the fairness policy the snapshot was
	// solved under.
	Policy string
	// Taken is the commit wall-clock time.
	Taken time.Time
	// Shares maps job ID to its per-site share vector.
	Shares map[string][]float64
	// Inst is the instance the shares were solved against (job order =
	// Inst.JobName).
	Inst *core.Instance
	// BatchSize is the number of mutations in the commit that produced
	// this snapshot (0 for the initial snapshot).
	BatchSize int
	// SolveDuration is how long the commit's re-solve took.
	SolveDuration time.Duration
	// ComponentsReused and ComponentsResolved record how incrementally the
	// commit's solve ran: reused components were spliced from carried or
	// fingerprint-cached results, resolved ones were actually re-solved.
	// Both are zero when the solve was skipped (nothing dirty) and
	// Reused is zero on from-scratch paths.
	ComponentsReused   int
	ComponentsResolved int
	// PhaseLag counts acknowledged commutative mutations buffered against
	// hot components (Doppel-style phase reconciliation) and not yet folded
	// into this snapshot's allocation. Zero means the snapshot is exact; a
	// positive value bounds exactly how stale reads between phase
	// boundaries are.
	PhaseLag int
	// HotComponents is the size of the classifier's hot set at commit time
	// (0 when phase reconciliation is off).
	HotComponents int
}

// Allocation materializes the snapshot as a core.Allocation (rows in
// Inst.JobName order), for the fairness/feasibility verifiers.
func (s *AllocSnapshot) Allocation() *core.Allocation {
	a := &core.Allocation{
		Inst:  s.Inst,
		Share: make([][]float64, len(s.Inst.JobName)),
	}
	for i, id := range s.Inst.JobName {
		a.Share[i] = s.Shares[id]
	}
	return a
}

// Engine-side stage names (the solver's live in core: validate,
// partition, solve, merge, solve.component). Together they name the
// commit's sequential span timeline and the engine.stage.<name> latency
// histograms.
const (
	stageQueueWait = "queue_wait"
	stageApply     = "apply"
	stageWALEncode = "wal_encode"
	stageWALAppend = "wal_append"
	stageWALFsync  = "wal_fsync"
	stagePublish   = "publish"
	stageReconcile = "reconcile"
)

// op submission states: the CAS between the committer (taking the op to
// apply it) and a cancelling submitter (abandoning it while queued) that
// makes context cancellation race-free.
const (
	opQueued int32 = iota
	opTaken
	opCancelled
)

// op is one queued mutation. apply runs under the committer; done is
// closed after the batch containing the op has committed and its snapshot
// is published.
type op struct {
	apply func(*scheduler.Scheduler) error
	// rec is the mutation's WAL form, logged iff apply succeeds. Nil means
	// the op is not logged.
	rec *wal.Mutation
	// exclusive ops (snapshot restores) never share a batch: the committer
	// finishes the in-progress batch, commits the exclusive op alone, then
	// resumes batching.
	exclusive bool
	// traceID is the submitting request's trace ID ("" when the context
	// carried none); parentID is the cluster-level parent trace ID riding
	// the request (X-AMF-Parent-Span, "" standalone); enqueuedAt anchors
	// the commit's queue-wait span.
	traceID    span.ID
	parentID   span.ID
	enqueuedAt time.Time
	state      atomic.Int32
	err        error
	done       chan struct{}
}

// Engine is the concurrent serving engine. Create with New, stop with
// Close. All methods are safe for concurrent use.
type Engine struct {
	sc  *scheduler.Scheduler
	cfg Config

	mu     sync.RWMutex // guards closed + sends on ops vs. Close
	closed bool
	ops    chan *op
	done   chan struct{} // closed when the committer exits

	// pending holds an exclusive op the gatherer pulled mid-batch; the
	// committer commits it alone on its next iteration. Committer-only.
	pending *op

	// phase is the Doppel-style delta-buffering state (see phase.go) and
	// hitWin the windowed cache-hit-ratio tracker; both committer-only.
	// phaseLagA mirrors phase.buffered for the lock-free fast path in
	// Snapshot (store-before-ack ordering makes the mirror safe to trust).
	phase     phaseState
	hitWin    cacheWindow
	phaseLagA atomic.Int64

	compactCh chan struct{} // periodic compaction ticks
	crash     chan struct{} // test support: simulated process death
	crashOnce sync.Once

	walFailed atomic.Bool

	snap atomic.Pointer[AllocSnapshot]

	// explain caches the lazily-derived allocation explanation for the
	// published snapshot, keyed by its version. Deriving is read-side work
	// (Explain), never commit-side, so explanation capture adds zero cost
	// to the commit path; the mutex only serializes concurrent first
	// readers of the same version.
	explainMu    sync.Mutex
	explainCache atomic.Pointer[explainEntry]

	// Commit-trace state, owned by the committer goroutine. tb is the
	// in-flight commit's trace builder (nil outside a traced commit); the
	// solver stage hook and WAL observer append into it from the
	// committer's own call stack. solveSpanSum accumulates the non-detail
	// solver stage durations of the current publish, so the "publish" span
	// can report only the snapshot-building overhead beyond them.
	commitSeq    uint64
	tb           *span.Builder
	solveSpanSum time.Duration

	// Cached metric handles; when Config.Metrics is unset they point into
	// a private throwaway registry so the hot path stays branch-free.
	reg              *obs.Registry
	mMutations       *obs.Counter
	mCommits         *obs.Counter
	mExclusive       *obs.Counter
	mCancels         *obs.Counter
	mSolveErrs       *obs.Counter
	mReads           *obs.Counter
	mWALErrs         *obs.Counter
	mCompacts        *obs.Counter
	mPhaseBuffered   *obs.Counter
	mPhaseReconciles *obs.Counter
	mPhaseForced     *obs.Counter
	hSolve           *obs.Histogram
	hCommit          *obs.Histogram
	hWALAppend       *obs.Histogram
	hWALFsync        *obs.Histogram
	hWALCompact      *obs.Histogram
	gBatch           *obs.Gauge
	gVersion         *obs.Gauge
	gJobs            *obs.Gauge
	gComps           *obs.Gauge
	gLargest         *obs.Gauge
	gSpeedup         *obs.Gauge
	gReused          *obs.Gauge
	gResolved        *obs.Gauge
	gHitRatio        *obs.Gauge
	gHitRatioWin     *obs.Gauge
	gPhaseLag        *obs.Gauge
	gHotComps        *obs.Gauge
	gWALRecords      *obs.Gauge
	gWALBytes        *obs.Gauge
	gWALSegs         *obs.Gauge
	gJain            *obs.Gauge
	gMinShare        *obs.Gauge
	gMaxShare        *obs.Gauge
	gApproxComp      *obs.Gauge
	gApproxErr       *obs.Gauge
	// stageHists caches the engine.stage.<name> histograms for the known
	// stage names; unknown names fall back to a (thread-safe) registry
	// lookup.
	stageHists map[string]*obs.Histogram
}

// New wraps a scheduler in a serving engine, publishes the initial
// snapshot (solving the scheduler's current state), and starts the
// committer. The engine assumes ownership of mutations: apply writes only
// through it, or snapshots (and the WAL, if attached) will lag the
// controller. With Config.Log, the scheduler must already hold the
// recovered state (wal.Recovery.Replay) — the engine logs only what it
// commits.
func New(sc *scheduler.Scheduler, cfg Config) (*Engine, error) {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.CompactBytes <= 0 {
		cfg.CompactBytes = 4 << 20
	}
	e := &Engine{
		sc:        sc,
		cfg:       cfg,
		ops:       make(chan *op, cfg.QueueDepth),
		done:      make(chan struct{}),
		compactCh: make(chan struct{}, 1),
		crash:     make(chan struct{}),
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e.reg = reg
	e.mMutations = reg.Counter("engine.mutations_total")
	e.mCommits = reg.Counter("engine.commits_total")
	e.mExclusive = reg.Counter("engine.exclusive_commits_total")
	e.mCancels = reg.Counter("engine.cancelled_mutations_total")
	e.mSolveErrs = reg.Counter("engine.solve_errors_total")
	e.mReads = reg.Counter("engine.snapshot_reads_total")
	e.mWALErrs = reg.Counter("wal.errors_total")
	e.mCompacts = reg.Counter("wal.compactions_total")
	e.hSolve = reg.Histogram("engine.solve_latency")
	e.hCommit = reg.Histogram("engine.commit_latency")
	e.hWALAppend = reg.Histogram("wal.append_latency")
	e.hWALFsync = reg.Histogram("wal.fsync_latency")
	e.hWALCompact = reg.Histogram("wal.compact_latency")
	e.gBatch = reg.Gauge("engine.last_batch_size")
	e.gVersion = reg.Gauge("engine.snapshot_version")
	e.gJobs = reg.Gauge("engine.jobs")
	e.gComps = reg.Gauge("engine.solve_components")
	e.gLargest = reg.Gauge("engine.solve_largest_component")
	e.gSpeedup = reg.Gauge("engine.solve_speedup")
	e.gReused = reg.Gauge("engine.components_reused")
	e.gResolved = reg.Gauge("engine.components_resolved")
	e.gHitRatio = reg.Gauge("engine.cache_hit_ratio")
	e.gHitRatioWin = reg.Gauge("engine.cache_hit_ratio_window")
	e.gPhaseLag = reg.Gauge("engine.phase_lag")
	e.gHotComps = reg.Gauge("engine.hot_components")
	e.mPhaseBuffered = reg.Counter("engine.phase_buffered_total")
	e.mPhaseReconciles = reg.Counter("engine.phase_reconciles_total")
	e.mPhaseForced = reg.Counter("engine.phase_forced_reconciles_total")
	e.gWALRecords = reg.Gauge("wal.records_since_compact")
	e.gWALBytes = reg.Gauge("wal.bytes_since_compact")
	e.gWALSegs = reg.Gauge("wal.segments")
	e.gJain = reg.Gauge("fairness.jain_index")
	e.gMinShare = reg.Gauge("fairness.min_normalized_share")
	e.gMaxShare = reg.Gauge("fairness.max_normalized_share")
	e.gApproxComp = reg.Gauge("engine.approx_components")
	e.gApproxErr = reg.Gauge("engine.approx_error_bound")
	e.stageHists = make(map[string]*obs.Histogram)
	for _, s := range []string{
		stageQueueWait, stageApply, stageWALEncode, stagePublish, stageReconcile,
		core.StageValidate, core.StagePartition, core.StageSolve,
		core.StageMerge, core.StageSolveComponent, core.StageSolveApprox,
	} {
		e.stageHists[s] = reg.Histogram("engine.stage." + s)
	}
	sc.SetOnSolve(func(d time.Duration) { e.hSolve.Observe(d) })
	// The stage hook fires on whichever goroutine drives the solve — always
	// the committer (or New's goroutine, for the initial publish below), so
	// touching e.tb and e.solveSpanSum needs no lock.
	sc.SetOnStage(func(ev core.StageEvent) {
		e.stageObserve(ev.Name, ev.Duration)
		tb := e.tb
		if tb == nil {
			return
		}
		if ev.Detail {
			tb.Detail(ev.Name, ev.Duration)
		} else {
			tb.Stage(ev.Name, ev.Duration)
			e.solveSpanSum += ev.Duration
		}
	})
	if cfg.Log != nil {
		// The engine drives the WAL from the committer goroutine only, so
		// the observer may touch e.tb for the same reason as the stage hook.
		cfg.Log.SetObserver(func(op string, d time.Duration) {
			switch op {
			case "append":
				e.hWALAppend.Observe(d)
			case "sync":
				e.hWALFsync.Observe(d)
			case "compact":
				e.hWALCompact.Observe(d)
			}
			if tb := e.tb; tb != nil {
				switch op {
				case "append":
					tb.Stage(stageWALAppend, d)
				case "sync":
					tb.Stage(stageWALFsync, d)
				}
			}
		})
	}
	if _, err := e.publish(0); err != nil {
		return nil, fmt.Errorf("serve: initial solve: %w", err)
	}
	e.updateWALGauges()
	go e.commitLoop()
	if cfg.Log != nil && cfg.CompactInterval > 0 {
		go e.compactTicker()
	}
	return e, nil
}

// Close stops the committer after draining already-queued mutations
// (they commit normally), then — with a WAL attached — folds the log into
// a final snapshot and seals it, so a restart recovers from the snapshot
// alone. Later mutations fail with ErrClosed; reads keep serving the last
// published snapshot.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.done
		return nil
	}
	e.closed = true
	close(e.ops)
	e.mu.Unlock()
	<-e.done
	return nil
}

// Crash is test support for durability: it simulates process death by
// stopping the committer without draining the queue, sealing the WAL or
// writing a final snapshot. Whatever the log's group commits acknowledged
// is exactly what a subsequent wal.Open of the same directory recovers.
// Queued and later mutations fail with ErrClosed.
func (e *Engine) Crash() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		e.crashOnce.Do(func() { close(e.crash) })
	}
	e.mu.Unlock()
	<-e.done
}

// submit enqueues a mutation and blocks until its batch commits or ctx is
// cancelled. Cancellation while the op is still queued abandons it — the
// committer will skip it — instead of blocking on the batch window.
func (e *Engine) submit(ctx context.Context, exclusive bool, rec *wal.Mutation, apply func(*scheduler.Scheduler) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if e.walFailed.Load() {
		return ErrWALFailed
	}
	o := &op{
		apply:      apply,
		rec:        rec,
		exclusive:  exclusive,
		traceID:    span.FromContext(ctx),
		parentID:   span.ParentFromContext(ctx),
		enqueuedAt: time.Now(),
		done:       make(chan struct{}),
	}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	select {
	case e.ops <- o:
		e.mu.RUnlock()
	case <-ctx.Done():
		e.mu.RUnlock()
		return ctx.Err()
	}
	select {
	case <-o.done:
		return o.err
	case <-ctx.Done():
		if o.state.CompareAndSwap(opQueued, opCancelled) {
			// The committer had not reached the op; it will be skipped.
			e.mCancels.Inc()
			return ctx.Err()
		}
		// The committer already took it: the commit's outcome stands.
		<-o.done
		return o.err
	}
}

// commitLoop is the single committer goroutine: gather a batch, apply it,
// solve once, make it durable, publish, release the batch's waiters.
func (e *Engine) commitLoop() {
	defer close(e.done)
	for {
		if o := e.pending; o != nil {
			e.pending = nil
			e.commit([]*op{o})
			e.maybeCompact()
			continue
		}
		select {
		case o, ok := <-e.ops:
			if !ok {
				e.finalize()
				return
			}
			if o.exclusive {
				e.commit([]*op{o})
			} else {
				e.commit(e.gather(o))
			}
			e.maybeCompact()
		case <-e.phase.timerC:
			// nil until phase deltas arm the interval boundary (a receive
			// from a nil channel blocks forever, so this case is inert).
			e.phaseTick()
		case <-e.compactCh:
			e.compactNow()
		case <-e.crash:
			e.releaseQueued()
			return
		}
	}
}

// finalize is the graceful-shutdown tail: reconcile outstanding phase
// deltas (they are acknowledged state), then fold the WAL into a final
// snapshot and seal it.
func (e *Engine) finalize() {
	if e.phaseFlush(true) && !e.walFailed.Load() {
		if _, err := e.publish(0); err != nil {
			e.mSolveErrs.Inc()
		}
	}
	e.phaseLagA.Store(0)
	if e.cfg.Log == nil {
		return
	}
	e.compactNow()
	if err := e.cfg.Log.Close(); err != nil {
		e.mWALErrs.Inc()
	}
}

// releaseQueued fails whatever the simulated crash stranded in the queue.
func (e *Engine) releaseQueued() {
	for {
		select {
		case o := <-e.ops:
			o.err = ErrClosed
			close(o.done)
		default:
			return
		}
	}
}

// gather collects up to MaxBatch ops: everything already queued, plus —
// when BatchWindow > 0 — whatever else arrives within the window. An
// exclusive op encountered mid-gather ends the batch; it is parked in
// e.pending and committed alone next.
func (e *Engine) gather(first *op) []*op {
	batch := []*op{first}
	if e.cfg.MaxBatch <= 1 {
		return batch
	}
	var window <-chan time.Time
	if e.cfg.BatchWindow > 0 {
		t := time.NewTimer(e.cfg.BatchWindow)
		defer t.Stop()
		window = t.C
	}
	for len(batch) < e.cfg.MaxBatch {
		select {
		case o, ok := <-e.ops:
			if !ok {
				return batch // closing: commit what we have
			}
			if o.exclusive {
				e.pending = o
				return batch
			}
			batch = append(batch, o)
		default:
			if window == nil {
				return batch
			}
			select {
			case o, ok := <-e.ops:
				if !ok {
					return batch
				}
				if o.exclusive {
					e.pending = o
					return batch
				}
				batch = append(batch, o)
			case <-window:
				return batch
			}
		}
	}
	return batch
}

// commit applies a batch, logs it, re-solves once, publishes the new
// snapshot, and wakes the batch's submitters. Ops whose submitter
// cancelled while queued are skipped, not applied.
func (e *Engine) commit(batch []*op) {
	start := time.Now()
	e.commitSeq++
	e.beginTrace(batch, start)
	e.phaseRefresh()
	tApply := time.Now()
	var recs []wal.Mutation
	applied := 0
	var requests []span.ID
	for _, o := range batch {
		if !o.state.CompareAndSwap(opQueued, opTaken) {
			o.err = context.Canceled
			continue
		}
		applied++
		if o.traceID != "" {
			requests = append(requests, o.traceID)
		}
		if e.phaseAbsorb(o) {
			// Buffered against a hot component: not applied yet, but its
			// WAL record rides in this batch so the ack that follows the
			// group fsync is durable exactly like an applied mutation's.
			if o.rec != nil && e.cfg.Log != nil {
				recs = append(recs, *o.rec)
			}
			continue
		}
		o.err = o.apply(e.sc)
		if o.err == nil && o.rec != nil && e.cfg.Log != nil {
			recs = append(recs, *o.rec)
		}
	}
	applyD := time.Since(tApply)
	e.stageObserve(stageApply, applyD)
	if tb := e.tb; tb != nil {
		tb.SetBatch(applied, requests)
		tb.Stage(stageApply, applyD)
	}
	// Durability barrier: one record, one fsync for the whole batch. On
	// failure nothing is acknowledged and nothing further will be — the
	// published snapshot keeps matching what recovery would rebuild.
	if len(recs) > 0 {
		if err := e.logBatch(recs); err != nil {
			e.failWAL(batch, err)
			// Fold outstanding buffered deltas into the controller so direct
			// state reads stay complete; nothing is republished (the
			// in-memory controller already ran ahead of durable state the
			// moment this batch applied, which is why mutations fail-stop).
			e.phaseFlush(true)
			e.phaseLagA.Store(0)
			e.finishCommit(batch, start)
			return
		}
	}
	// Phase clock: the batch is durable; reconcile at the boundary so the
	// merged solve lands in this commit's publish.
	e.phaseEndBatch()
	e.solveSpanSum = 0
	pubStart := time.Now()
	snap, err := e.publish(applied)
	if err != nil {
		// The mutations were applied but the allocation could not be
		// recomputed; surface the solve failure to every op that had
		// succeeded so no caller mistakes a stale snapshot for fresh.
		e.mSolveErrs.Inc()
		for _, o := range batch {
			if o.err == nil {
				o.err = err
			}
		}
	} else {
		e.gJobs.Set(float64(len(snap.Shares)))
		e.gVersion.Set(float64(snap.Version))
		st := e.sc.Stats()
		e.gComps.Set(float64(st.LastComponents))
		e.gLargest.Set(float64(st.LastLargestComponent))
		e.gSpeedup.Set(st.LastSpeedup)
		e.gReused.Set(float64(st.LastReused))
		e.gResolved.Set(float64(st.LastResolved))
		// Lifetime ratio (kept for dashboard continuity) plus the windowed
		// companion: the lifetime counters make the ratio converge so
		// slowly that behavior changes barely move it.
		if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
			e.gHitRatio.Set(float64(st.CacheHits) / float64(lookups))
		}
		e.observeCacheWindow(st.CacheHits, st.CacheMisses)
		e.gPhaseLag.Set(float64(e.phase.buffered))
		hot := 0
		if e.phase.hs != nil {
			hot = len(e.phase.hs.Keys)
		}
		e.gHotComps.Set(float64(hot))
		e.gApproxComp.Set(float64(st.LastApproxComponents))
		e.gApproxErr.Set(st.LastApproxErrorBound)
		e.updateFairnessGauges(snap)
	}
	// The solver's stage events streamed into the trace during publish; the
	// "publish" span covers the remainder — snapshot building and the
	// post-publish gauge refresh (which walks every job's shares and is a
	// real cost on large job sets) — keeping the timeline contiguous.
	pubOver := time.Since(pubStart) - e.solveSpanSum
	e.stageObserve(stagePublish, pubOver)
	if tb := e.tb; tb != nil {
		tb.Stage(stagePublish, pubOver)
	}
	if len(batch) == 1 && batch[0].exclusive {
		e.mExclusive.Inc()
	}
	e.finishCommit(batch, start)
}

func (e *Engine) finishCommit(batch []*op, start time.Time) {
	e.mMutations.Add(int64(len(batch)))
	e.mCommits.Inc()
	e.gBatch.Set(float64(len(batch)))
	total := time.Since(start)
	e.hCommit.Observe(total)
	e.updateWALGauges()
	t := e.finishTrace(batch)
	if e.cfg.Logger != nil && e.cfg.SlowCommit > 0 && total >= e.cfg.SlowCommit {
		attrs := []any{
			slog.Uint64("batch_seq", e.commitSeq),
			slog.Int("batch_size", len(batch)),
			slog.Duration("total", total),
		}
		if t != nil {
			attrs = append(attrs, slog.String("trace_id", string(t.ID)))
			for _, sp := range t.Spans {
				if !sp.Detail {
					attrs = append(attrs, slog.Float64("stage."+sp.Name+"_seconds", sp.Duration))
				}
			}
		}
		e.cfg.Logger.Warn("slow commit", attrs...)
	}
	for _, o := range batch {
		close(o.done)
	}
}

// beginTrace opens the commit's trace when a Recorder is configured. The
// trace starts at the enqueue time of the earliest mutation in the batch
// (so the first span is the batch's queue wait) and takes its ID from the
// first request-minted trace ID riding in the batch, falling back to a
// fresh one. The queue-wait histogram is fed whether or not tracing is on.
func (e *Engine) beginTrace(batch []*op, start time.Time) {
	earliest := start
	var id, parent span.ID
	for _, o := range batch {
		if !o.enqueuedAt.IsZero() && o.enqueuedAt.Before(earliest) {
			earliest = o.enqueuedAt
		}
		if id == "" {
			id = o.traceID
		}
		if parent == "" {
			parent = o.parentID
		}
	}
	wait := start.Sub(earliest)
	e.stageObserve(stageQueueWait, wait)
	if e.cfg.Traces == nil {
		return
	}
	if id == "" {
		id = span.MintID()
	}
	tb := span.Begin(id, earliest)
	tb.SetSeq(e.commitSeq)
	tb.SetParent(parent)
	tb.Stage(stageQueueWait, wait)
	e.tb = tb
}

// finishTrace seals and records the commit's trace, returning it for the
// slow-commit log (nil when tracing is off).
func (e *Engine) finishTrace(batch []*op) *span.Trace {
	tb := e.tb
	if tb == nil {
		return nil
	}
	e.tb = nil
	for _, o := range batch {
		if o.err != nil && !errors.Is(o.err, context.Canceled) {
			tb.SetError(o.err)
			break
		}
	}
	t := tb.Finish()
	e.cfg.Traces.Record(t)
	e.cfg.SlowTraces.Record(t) // nil-safe no-op when retention is off
	return t
}

// stageObserve feeds one engine.stage.<name> latency histogram, falling
// back to a registry lookup for stage names outside the precreated set.
func (e *Engine) stageObserve(name string, d time.Duration) {
	h, ok := e.stageHists[name]
	if !ok {
		h = e.reg.Histogram("engine.stage." + name)
	}
	h.Observe(d)
}

// updateFairnessGauges recomputes the published allocation's fairness
// gauges: Jain's index over the jobs' aggregate (cross-site) allocations,
// and the minimum and maximum weight-normalized aggregate share. O(jobs ×
// sites touched), once per commit.
func (e *Engine) updateFairnessGauges(snap *AllocSnapshot) {
	names := snap.Inst.JobName
	if len(names) == 0 {
		e.gJain.Set(1)
		e.gMinShare.Set(0)
		e.gMaxShare.Set(0)
		return
	}
	agg := make([]float64, len(names))
	for i, id := range names {
		for _, v := range snap.Shares[id] {
			agg[i] += v
		}
	}
	norm := agg
	if snap.Inst.Weight != nil {
		norm = fairness.NormalizedShares(agg, snap.Inst.Weight)
	}
	mn, mx := norm[0], norm[0]
	for _, v := range norm[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	e.gJain.Set(fairness.JainIndex(agg))
	e.gMinShare.Set(mn)
	e.gMaxShare.Set(mx)
}

// logBatch appends the batch's successful mutations as one WAL record and
// group-fsyncs it. Append/fsync latencies are observed by the wal.Log
// observer installed in New, which also feeds the in-flight trace.
func (e *Engine) logBatch(recs []wal.Mutation) error {
	tEnc := time.Now()
	payload, err := wal.EncodeBatch(recs)
	encD := time.Since(tEnc)
	e.stageObserve(stageWALEncode, encD)
	if tb := e.tb; tb != nil {
		tb.Stage(stageWALEncode, encD)
	}
	if err != nil {
		return err
	}
	if err := e.cfg.Log.Append(payload); err != nil {
		return err
	}
	return e.cfg.Log.Sync()
}

// failWAL fail-stops mutations after a durability failure: every op in
// the batch — including ones whose in-memory apply succeeded — reports
// the failure, and the snapshot is NOT republished, so reads keep serving
// the last acknowledged (and recoverable) state.
func (e *Engine) failWAL(batch []*op, err error) {
	e.mWALErrs.Inc()
	e.walFailed.Store(true)
	werr := fmt.Errorf("%w: %v", ErrWALFailed, err)
	for _, o := range batch {
		if o.err == nil {
			o.err = werr
		}
	}
}

// maybeCompact folds the log once the record tail outgrows CompactBytes.
func (e *Engine) maybeCompact() {
	if e.cfg.Log == nil || e.walFailed.Load() {
		return
	}
	if e.cfg.Log.Stats().BytesSinceCompact >= e.cfg.CompactBytes {
		e.compactNow()
	}
}

// compactNow snapshots the controller and folds the log. It runs on the
// committer goroutine between batches, so the state it captures is
// exactly the state the log's records produced — no mutation can
// interleave.
func (e *Engine) compactNow() {
	if e.cfg.Log == nil || e.walFailed.Load() {
		return
	}
	// Buffered phase deltas are acknowledged state: fold them in (and
	// republish, so readers never trail the compacted snapshot) before
	// capturing it, or compaction would persist a state behind what
	// callers were told.
	if e.phaseFlush(true) {
		e.phaseLagA.Store(0)
		if _, err := e.publish(0); err != nil {
			e.mSolveErrs.Inc()
			return
		}
	}
	state, err := wal.EncodeState(e.sc.Snapshot())
	if err != nil {
		e.mWALErrs.Inc()
		return
	}
	if err := e.cfg.Log.Compact(state); err != nil {
		e.mWALErrs.Inc()
		e.walFailed.Store(true)
		return
	}
	e.mCompacts.Inc()
	e.updateWALGauges()
}

func (e *Engine) updateWALGauges() {
	if e.cfg.Log == nil {
		return
	}
	ws := e.cfg.Log.Stats()
	e.gWALRecords.Set(float64(ws.RecordsSinceCompact))
	e.gWALBytes.Set(float64(ws.BytesSinceCompact))
	e.gWALSegs.Set(float64(ws.Segments))
}

// compactTicker feeds periodic compaction requests to the committer.
func (e *Engine) compactTicker() {
	t := time.NewTicker(e.cfg.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			select {
			case e.compactCh <- struct{}{}:
			default:
			}
		case <-e.done:
			return
		}
	}
}

// publish re-solves (if dirty) and swaps in the next snapshot.
func (e *Engine) publish(batchSize int) (*AllocSnapshot, error) {
	solveStart := time.Now()
	inst, shares, err := e.sc.Resolve()
	if err != nil {
		return nil, err
	}
	st := e.sc.Stats()
	prev := e.snap.Load()
	next := &AllocSnapshot{
		Version:            1,
		Policy:             e.sc.PolicyName(),
		Taken:              time.Now(),
		Shares:             shares,
		Inst:               inst,
		BatchSize:          batchSize,
		SolveDuration:      time.Since(solveStart),
		ComponentsReused:   st.LastReused,
		ComponentsResolved: st.LastResolved,
		PhaseLag:           e.phase.buffered,
	}
	if e.phase.hs != nil {
		next.HotComponents = len(e.phase.hs.Keys)
	}
	if prev != nil {
		next.Version = prev.Version + 1
	}
	e.snap.Store(next)
	return next, nil
}

// Current returns the latest published allocation snapshot. It never
// blocks and never contends with writers.
func (e *Engine) Current() *AllocSnapshot {
	e.mReads.Inc()
	return e.snap.Load()
}

// SnapshotVersion reports the published snapshot's version without
// counting as a snapshot read — the cluster router's version-vector probe.
func (e *Engine) SnapshotVersion() uint64 { return e.snap.Load().Version }

// PhaseInfo reports the published snapshot's phase lag (acknowledged
// commutative mutations buffered against hot components, not yet folded
// into the allocation; 0 = exact) and the classifier's hot-set size,
// without counting as a snapshot read.
func (e *Engine) PhaseInfo() (phaseLag, hotComponents int) {
	snap := e.snap.Load()
	return snap.PhaseLag, snap.HotComponents
}

// ReadyErr reports whether the engine can accept mutations: nil when
// healthy, ErrWALFailed after a durability fail-stop, ErrClosed after
// Close/Crash. Reads keep serving either way; /v1/readyz distinguishes
// "serving but degraded" from healthy exactly on this.
func (e *Engine) ReadyErr() error {
	if e.walFailed.Load() {
		return ErrWALFailed
	}
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	return nil
}

// --- Mutations (all group-committed, context-aware) ----------------------

// AddJob registers a job; see scheduler.AddJob.
func (e *Engine) AddJob(ctx context.Context, id string, weight float64, demand, work []float64) error {
	return e.submit(ctx, false,
		&wal.Mutation{Op: wal.OpAddJob, ID: id, Weight: weight, Demand: demand, Work: work},
		func(sc *scheduler.Scheduler) error {
			return sc.AddJob(id, weight, demand, work)
		})
}

// AddJobInQueue registers a job under a declared queue.
func (e *Engine) AddJobInQueue(ctx context.Context, queue, id string, weight float64, demand, work []float64) error {
	return e.submit(ctx, false,
		&wal.Mutation{Op: wal.OpAddJob, ID: id, Queue: queue, Weight: weight, Demand: demand, Work: work},
		func(sc *scheduler.Scheduler) error {
			return sc.AddJobInQueue(queue, id, weight, demand, work)
		})
}

// AddJobs atomically registers a whole set of jobs in ONE commit: one
// queue slot, one solve, one WAL record, all-or-nothing semantics (see
// scheduler.AddJobs).
func (e *Engine) AddJobs(ctx context.Context, specs []scheduler.JobSpec) error {
	return e.submit(ctx, false,
		&wal.Mutation{Op: wal.OpAddJobs, Jobs: specs},
		func(sc *scheduler.Scheduler) error {
			return sc.AddJobs(specs)
		})
}

// AddQueue declares a weighted queue.
func (e *Engine) AddQueue(ctx context.Context, name string, weight float64) error {
	return e.submit(ctx, false,
		&wal.Mutation{Op: wal.OpAddQueue, ID: name, Weight: weight},
		func(sc *scheduler.Scheduler) error {
			return sc.AddQueue(name, weight)
		})
}

// RemoveJob deregisters a job.
func (e *Engine) RemoveJob(ctx context.Context, id string) error {
	return e.submit(ctx, false,
		&wal.Mutation{Op: wal.OpRemoveJob, ID: id},
		func(sc *scheduler.Scheduler) error {
			return sc.RemoveJob(id)
		})
}

// ReportProgress subtracts completed work; it reports whether the job
// finished.
func (e *Engine) ReportProgress(ctx context.Context, id string, done []float64) (bool, error) {
	var completed bool
	err := e.submit(ctx, false,
		&wal.Mutation{Op: wal.OpProgress, ID: id, Done: done},
		func(sc *scheduler.Scheduler) error {
			var err error
			completed, err = sc.ReportProgress(id, done)
			return err
		})
	return completed, err
}

// UpdateWeight changes a job's share weight.
func (e *Engine) UpdateWeight(ctx context.Context, id string, weight float64) error {
	return e.submit(ctx, false,
		&wal.Mutation{Op: wal.OpWeight, ID: id, Weight: weight},
		func(sc *scheduler.Scheduler) error {
			return sc.UpdateWeight(id, weight)
		})
}

// SetExternalWeight installs the cluster router's Enhanced-AMF weight-sum
// broadcast (scheduler.SetExternalWeight). It is group-committed and WAL
// logged like any other mutation, so a replica replaying this shard's log
// reconstructs the same floors the shard solved under.
func (e *Engine) SetExternalWeight(ctx context.Context, w float64) error {
	return e.submit(ctx, false,
		&wal.Mutation{Op: wal.OpExternalWeight, Weight: w},
		func(sc *scheduler.Scheduler) error {
			return sc.SetExternalWeight(w)
		})
}

// SetApproxConfig retunes the solver's approximate water-filling knobs
// (scheduler.SetApproxConfig). The change is group-committed like any
// mutation — the re-solve it forces lands in an ordinary batch — but it
// is not WAL logged: the knobs are process-local performance settings
// that flags re-establish on restart, and every allocation they produce
// stays within the configured epsilon of the exact solution.
func (e *Engine) SetApproxConfig(ctx context.Context, epsilon float64, threshold int) error {
	return e.submit(ctx, false, nil,
		func(sc *scheduler.Scheduler) error {
			return sc.SetApproxConfig(epsilon, threshold)
		})
}

// ApproxConfig reports the solver's current approximation knobs.
func (e *Engine) ApproxConfig() (epsilon float64, threshold int) {
	return e.sc.ApproxConfig()
}

// PolicyName reports the wire name of the controller's active fairness
// policy.
func (e *Engine) PolicyName() string { return e.sc.PolicyName() }

// SetPolicy switches the controller's fairness policy by wire name
// (policy.Names lists the valid ones). Like Restore, the switch is
// exclusive — the committer quiesces the batch pipeline and commits it
// alone, so every other commit is solved entirely under one policy — and
// it is WAL logged, so recovery replays the switch at the same point in
// the mutation order. Switching to the already-active policy is a no-op
// that still publishes a snapshot.
func (e *Engine) SetPolicy(ctx context.Context, name string) error {
	// Validate before submitting: an unknown name should fail fast at the
	// API edge, not poison a WAL record.
	if _, err := policy.ForName(name); err != nil {
		return err
	}
	return e.submit(ctx, true,
		&wal.Mutation{Op: wal.OpSetPolicy, Policy: name},
		func(sc *scheduler.Scheduler) error {
			return sc.SetPolicyName(name)
		})
}

// RuntimeConfig reports the controller's runtime-tuning document:
// policy, approximate-solver routing, phase-reconciliation knobs. The
// context parameter exists for surface uniformity with backends whose
// config read fans out remotely (the cluster router); here it is only
// checked for cancellation.
func (e *Engine) RuntimeConfig(ctx context.Context) (scheduler.RuntimeConfig, error) {
	if err := ctx.Err(); err != nil {
		return scheduler.RuntimeConfig{}, err
	}
	return e.sc.RuntimeConfig(), nil
}

// ApplyConfig applies one runtime-tuning patch (PATCH /v1/config). Like
// SetPolicy it is exclusive — the batch pipeline quiesces, outstanding
// phase deltas reconcile, and the patch commits alone — and WAL-logged
// (OpSetConfig), so recovery replays the tuning change at the same point
// in the mutation order and compaction persists the result. The patch is
// validated against the current state before it is enqueued, so an
// invalid patch fails fast and never poisons a WAL record.
func (e *Engine) ApplyConfig(ctx context.Context, p scheduler.ConfigPatch) error {
	if err := e.sc.ValidateConfigPatch(p); err != nil {
		return err
	}
	return e.submit(ctx, true,
		&wal.Mutation{Op: wal.OpSetConfig, Config: &p},
		func(sc *scheduler.Scheduler) error {
			return sc.ApplyConfigPatch(p)
		})
}

// Restore replaces the controller's job set from a state snapshot. The
// swap is exclusive: the committer quiesces the batch pipeline and
// commits the restore alone, so no concurrent mutation lands in the same
// commit as the state replacement.
func (e *Engine) Restore(ctx context.Context, snap scheduler.Snapshot) error {
	return e.submit(ctx, true,
		&wal.Mutation{Op: wal.OpRestore, State: &snap},
		func(sc *scheduler.Scheduler) error {
			return sc.Restore(snap)
		})
}

// explainEntry is one cached derivation.
type explainEntry struct {
	version uint64
	ex      *core.Explanation
}

// ExplainResult is an allocation explanation plus the provenance readers
// need to interpret it: which snapshot version it explains, under which
// policy, and — in a cluster — which shard derived it. It is the neutral
// shape shared by the engine, the cluster router and read replicas (the
// api package maps it onto the wire response).
type ExplainResult struct {
	Version     uint64
	Policy      string
	Shard       string // owning shard, set by cluster routing; "" standalone
	Explanation *core.Explanation
}

// Explain derives the water-filling explanation for the current published
// snapshot: per-job final level, freeze round, binding sites with
// saturation residuals and the Enhanced-AMF floor-binding flag, per-site
// saturation and membership. The derivation is RCU-consistent — it reads
// exactly the snapshot's instance and share rows — and cached per
// version, so repeated reads are one pointer load. A non-empty job must
// exist (scheduler.ErrUnknownJob otherwise); the full explanation is
// returned either way so callers can render site context.
func (e *Engine) Explain(ctx context.Context, job string) (*ExplainResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	snap := e.Current()
	ex := e.explanationFor(snap)
	if job != "" && ex.JobByName(job) == nil {
		return nil, fmt.Errorf("%w: %q", scheduler.ErrUnknownJob, job)
	}
	return &ExplainResult{
		Version:     snap.Version,
		Policy:      snap.Policy,
		Explanation: ex,
	}, nil
}

// explanationFor returns the (possibly cached) explanation of one
// snapshot. Policy switches and floor changes republish — the version key
// covers them.
func (e *Engine) explanationFor(snap *AllocSnapshot) *core.Explanation {
	if ent := e.explainCache.Load(); ent != nil && ent.version == snap.Version {
		return ent.ex
	}
	e.explainMu.Lock()
	defer e.explainMu.Unlock()
	if ent := e.explainCache.Load(); ent != nil && ent.version == snap.Version {
		return ent.ex
	}
	share := make([][]float64, len(snap.Inst.JobName))
	for i, id := range snap.Inst.JobName {
		share[i] = snap.Shares[id]
		if share[i] == nil {
			share[i] = make([]float64, snap.Inst.NumSites())
		}
	}
	var floors []float64
	if e.sc.GlobalWeightFloors() {
		floors = core.EqualShares(snap.Inst)
	}
	ex := core.Explain(snap.Inst, share, floors)
	e.explainCache.Store(&explainEntry{version: snap.Version, ex: ex})
	return ex
}

// --- Reads (lock-free, from the published snapshot) ---------------------

// Allocation returns every job's shares from the current snapshot.
func (e *Engine) Allocation(ctx context.Context) (map[string][]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.Current().Shares, nil
}

// Shares returns one job's share vector from the current snapshot.
func (e *Engine) Shares(ctx context.Context, id string) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sh, ok := e.Current().Shares[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", scheduler.ErrUnknownJob, id)
	}
	return sh, nil
}

// Stats passes through the controller's counters.
func (e *Engine) Stats() scheduler.Stats { return e.sc.Stats() }

// Snapshot returns the controller's persistable job-set state. When
// phase deltas are outstanding it first quiesces them through the
// committer — an exclusive no-op commit forces a reconcile of every
// buffer before it applies — so the snapshot reflects every
// acknowledged mutation. On a closed engine the committer's finalize
// already flushed; after a WAL fail-stop the snapshot reflects
// reconciled state only (recovery from the log itself is authoritative
// there).
func (e *Engine) Snapshot() scheduler.Snapshot {
	if e.phaseLagA.Load() > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = e.submit(ctx, true, nil, func(*scheduler.Scheduler) error { return nil })
	}
	return e.sc.Snapshot()
}

// Package serve is the concurrent serving engine around the scheduler
// controller: the subsystem that lets one allocator instance absorb heavy
// mutation and read traffic without the solver sitting on every request's
// critical path.
//
// Two mechanisms do the work:
//
//   - Group-committed mutations. Mutations (add/remove/progress/weight,
//     queue declarations, snapshot restores) are enqueued to a single
//     committer goroutine, which drains whatever is pending — bounded by
//     MaxBatch and optionally stretched by BatchWindow — applies the whole
//     batch to the scheduler, and re-solves ONCE for the batch instead of
//     once per mutation. Callers block until their batch commits, so a
//     mutation's success/error is returned synchronously and a subsequent
//     read observes the write (read-your-writes).
//
//   - RCU-style allocation snapshots. Every commit publishes an immutable,
//     version-numbered AllocSnapshot through an atomic.Pointer. Reads
//     (Current, Allocation, Shares) load the pointer and walk the frozen
//     data — no lock, no contention with writers, never blocked behind a
//     solve.
//
// The engine optionally instruments itself into an obs.Registry: solver
// latency, commit latency, batch sizes, mutation/read counters, the
// published snapshot version, and the solver's decomposition telemetry
// (component count, largest component, parallel speedup).
//
// The scheduler owns one core.Solver for the engine's lifetime, and that
// solver pools its flow-network arena and checkpoint buffers across
// solves (see core.Solver), so consecutive batch commits over a
// similarly-shaped instance re-solve against warm state instead of
// rebuilding the network from scratch.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scheduler"
)

// ErrClosed is returned for mutations submitted after Close.
var ErrClosed = errors.New("serve: engine closed")

// Config parameterizes an Engine.
type Config struct {
	// MaxBatch caps the number of mutations committed per solve.
	// Values <= 1 disable batching: every mutation solves individually
	// (the "unbatched" baseline). Default 256.
	MaxBatch int
	// BatchWindow stretches batch collection: after the first mutation of
	// a batch arrives, the committer waits up to this long for more before
	// solving. Zero (the default) is opportunistic batching — the
	// committer drains only what is already queued, adding no latency.
	BatchWindow time.Duration
	// QueueDepth is the mutation queue's buffer (default 256).
	QueueDepth int
	// Metrics, when set, receives engine instrumentation (see package
	// comment). Nil disables it.
	Metrics *obs.Registry
}

// AllocSnapshot is one immutable published allocation: everything a read
// needs, frozen at commit time. Fields must not be mutated by readers.
type AllocSnapshot struct {
	// Version increases by one per commit; readers can use it to detect
	// staleness or order observations.
	Version uint64
	// Taken is the commit wall-clock time.
	Taken time.Time
	// Shares maps job ID to its per-site share vector.
	Shares map[string][]float64
	// Inst is the instance the shares were solved against (job order =
	// Inst.JobName).
	Inst *core.Instance
	// BatchSize is the number of mutations in the commit that produced
	// this snapshot (0 for the initial snapshot).
	BatchSize int
	// SolveDuration is how long the commit's re-solve took.
	SolveDuration time.Duration
	// ComponentsReused and ComponentsResolved record how incrementally the
	// commit's solve ran: reused components were spliced from carried or
	// fingerprint-cached results, resolved ones were actually re-solved.
	// Both are zero when the solve was skipped (nothing dirty) and
	// Reused is zero on from-scratch paths.
	ComponentsReused   int
	ComponentsResolved int
}

// Allocation materializes the snapshot as a core.Allocation (rows in
// Inst.JobName order), for the fairness/feasibility verifiers.
func (s *AllocSnapshot) Allocation() *core.Allocation {
	a := &core.Allocation{
		Inst:  s.Inst,
		Share: make([][]float64, len(s.Inst.JobName)),
	}
	for i, id := range s.Inst.JobName {
		a.Share[i] = s.Shares[id]
	}
	return a
}

// op is one queued mutation. apply runs under the committer; done is
// closed after the batch containing the op has committed and its snapshot
// is published.
type op struct {
	apply func(*scheduler.Scheduler) error
	err   error
	done  chan struct{}
}

// Engine is the concurrent serving engine. Create with New, stop with
// Close. All methods are safe for concurrent use.
type Engine struct {
	sc  *scheduler.Scheduler
	cfg Config

	mu     sync.RWMutex // guards closed + sends on ops vs. Close
	closed bool
	ops    chan *op
	done   chan struct{} // closed when the committer exits

	snap atomic.Pointer[AllocSnapshot]

	// Cached metric handles; when Config.Metrics is unset they point into
	// a private throwaway registry so the hot path stays branch-free.
	mMutations *obs.Counter
	mCommits   *obs.Counter
	mSolveErrs *obs.Counter
	mReads     *obs.Counter
	hSolve     *obs.Histogram
	hCommit    *obs.Histogram
	gBatch     *obs.Gauge
	gVersion   *obs.Gauge
	gJobs      *obs.Gauge
	gComps     *obs.Gauge
	gLargest   *obs.Gauge
	gSpeedup   *obs.Gauge
	gReused    *obs.Gauge
	gResolved  *obs.Gauge
	gHitRatio  *obs.Gauge
}

// New wraps a scheduler in a serving engine, publishes the initial
// snapshot (solving the scheduler's current state), and starts the
// committer. The engine assumes ownership of mutations: apply writes only
// through it, or snapshots will lag the controller.
func New(sc *scheduler.Scheduler, cfg Config) (*Engine, error) {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	e := &Engine{
		sc:   sc,
		cfg:  cfg,
		ops:  make(chan *op, cfg.QueueDepth),
		done: make(chan struct{}),
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e.mMutations = reg.Counter("engine.mutations_total")
	e.mCommits = reg.Counter("engine.commits_total")
	e.mSolveErrs = reg.Counter("engine.solve_errors_total")
	e.mReads = reg.Counter("engine.snapshot_reads_total")
	e.hSolve = reg.Histogram("engine.solve_latency")
	e.hCommit = reg.Histogram("engine.commit_latency")
	e.gBatch = reg.Gauge("engine.last_batch_size")
	e.gVersion = reg.Gauge("engine.snapshot_version")
	e.gJobs = reg.Gauge("engine.jobs")
	e.gComps = reg.Gauge("engine.solve_components")
	e.gLargest = reg.Gauge("engine.solve_largest_component")
	e.gSpeedup = reg.Gauge("engine.solve_speedup")
	e.gReused = reg.Gauge("engine.components_reused")
	e.gResolved = reg.Gauge("engine.components_resolved")
	e.gHitRatio = reg.Gauge("engine.cache_hit_ratio")
	sc.SetOnSolve(func(d time.Duration) { e.hSolve.Observe(d) })
	if _, err := e.publish(0); err != nil {
		return nil, fmt.Errorf("serve: initial solve: %w", err)
	}
	go e.commitLoop()
	return e, nil
}

// Close stops the committer after draining already-queued mutations
// (they commit normally). Later mutations fail with ErrClosed; reads keep
// serving the last published snapshot.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.done
		return nil
	}
	e.closed = true
	close(e.ops)
	e.mu.Unlock()
	<-e.done
	return nil
}

// submit enqueues a mutation and blocks until its batch commits.
func (e *Engine) submit(apply func(*scheduler.Scheduler) error) error {
	o := &op{apply: apply, done: make(chan struct{})}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	e.ops <- o
	e.mu.RUnlock()
	<-o.done
	return o.err
}

// commitLoop is the single committer goroutine: gather a batch, apply it,
// solve once, publish, release the batch's waiters.
func (e *Engine) commitLoop() {
	defer close(e.done)
	for first := range e.ops {
		batch := e.gather(first)
		e.commit(batch)
	}
}

// gather collects up to MaxBatch ops: everything already queued, plus —
// when BatchWindow > 0 — whatever else arrives within the window.
func (e *Engine) gather(first *op) []*op {
	batch := []*op{first}
	if e.cfg.MaxBatch <= 1 {
		return batch
	}
	var window <-chan time.Time
	if e.cfg.BatchWindow > 0 {
		t := time.NewTimer(e.cfg.BatchWindow)
		defer t.Stop()
		window = t.C
	}
	for len(batch) < e.cfg.MaxBatch {
		select {
		case o, ok := <-e.ops:
			if !ok {
				return batch // closing: commit what we have
			}
			batch = append(batch, o)
		default:
			if window == nil {
				return batch
			}
			select {
			case o, ok := <-e.ops:
				if !ok {
					return batch
				}
				batch = append(batch, o)
			case <-window:
				return batch
			}
		}
	}
	return batch
}

// commit applies a batch, re-solves once, publishes the new snapshot, and
// wakes the batch's submitters.
func (e *Engine) commit(batch []*op) {
	start := time.Now()
	for _, o := range batch {
		o.err = o.apply(e.sc)
	}
	snap, err := e.publish(len(batch))
	if err != nil {
		// The mutations were applied but the allocation could not be
		// recomputed; surface the solve failure to every op that had
		// succeeded so no caller mistakes a stale snapshot for fresh.
		e.mSolveErrs.Inc()
		for _, o := range batch {
			if o.err == nil {
				o.err = err
			}
		}
	} else {
		e.gJobs.Set(float64(len(snap.Shares)))
		e.gVersion.Set(float64(snap.Version))
		st := e.sc.Stats()
		e.gComps.Set(float64(st.LastComponents))
		e.gLargest.Set(float64(st.LastLargestComponent))
		e.gSpeedup.Set(st.LastSpeedup)
		e.gReused.Set(float64(st.LastReused))
		e.gResolved.Set(float64(st.LastResolved))
		if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
			e.gHitRatio.Set(float64(st.CacheHits) / float64(lookups))
		}
	}
	e.mMutations.Add(int64(len(batch)))
	e.mCommits.Inc()
	e.gBatch.Set(float64(len(batch)))
	e.hCommit.Observe(time.Since(start))
	for _, o := range batch {
		close(o.done)
	}
}

// publish re-solves (if dirty) and swaps in the next snapshot.
func (e *Engine) publish(batchSize int) (*AllocSnapshot, error) {
	solveStart := time.Now()
	inst, shares, err := e.sc.Resolve()
	if err != nil {
		return nil, err
	}
	st := e.sc.Stats()
	prev := e.snap.Load()
	next := &AllocSnapshot{
		Version:            1,
		Taken:              time.Now(),
		Shares:             shares,
		Inst:               inst,
		BatchSize:          batchSize,
		SolveDuration:      time.Since(solveStart),
		ComponentsReused:   st.LastReused,
		ComponentsResolved: st.LastResolved,
	}
	if prev != nil {
		next.Version = prev.Version + 1
	}
	e.snap.Store(next)
	return next, nil
}

// Current returns the latest published allocation snapshot. It never
// blocks and never contends with writers.
func (e *Engine) Current() *AllocSnapshot {
	e.mReads.Inc()
	return e.snap.Load()
}

// --- Mutations (all group-committed) ------------------------------------

// AddJob registers a job; see scheduler.AddJob.
func (e *Engine) AddJob(id string, weight float64, demand, work []float64) error {
	return e.submit(func(sc *scheduler.Scheduler) error {
		return sc.AddJob(id, weight, demand, work)
	})
}

// AddJobInQueue registers a job under a declared queue.
func (e *Engine) AddJobInQueue(queue, id string, weight float64, demand, work []float64) error {
	return e.submit(func(sc *scheduler.Scheduler) error {
		return sc.AddJobInQueue(queue, id, weight, demand, work)
	})
}

// AddQueue declares a weighted queue.
func (e *Engine) AddQueue(name string, weight float64) error {
	return e.submit(func(sc *scheduler.Scheduler) error {
		return sc.AddQueue(name, weight)
	})
}

// RemoveJob deregisters a job.
func (e *Engine) RemoveJob(id string) error {
	return e.submit(func(sc *scheduler.Scheduler) error {
		return sc.RemoveJob(id)
	})
}

// ReportProgress subtracts completed work; it reports whether the job
// finished.
func (e *Engine) ReportProgress(id string, done []float64) (bool, error) {
	var completed bool
	err := e.submit(func(sc *scheduler.Scheduler) error {
		var err error
		completed, err = sc.ReportProgress(id, done)
		return err
	})
	return completed, err
}

// UpdateWeight changes a job's share weight.
func (e *Engine) UpdateWeight(id string, weight float64) error {
	return e.submit(func(sc *scheduler.Scheduler) error {
		return sc.UpdateWeight(id, weight)
	})
}

// Restore replaces the controller's job set from a state snapshot.
func (e *Engine) Restore(snap scheduler.Snapshot) error {
	return e.submit(func(sc *scheduler.Scheduler) error {
		return sc.Restore(snap)
	})
}

// --- Reads (lock-free, from the published snapshot) ---------------------

// Allocation returns every job's shares from the current snapshot.
func (e *Engine) Allocation() (map[string][]float64, error) {
	return e.Current().Shares, nil
}

// Shares returns one job's share vector from the current snapshot.
func (e *Engine) Shares(id string) ([]float64, error) {
	sh, ok := e.Current().Shares[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", scheduler.ErrUnknownJob, id)
	}
	return sh, nil
}

// Stats passes through the controller's counters.
func (e *Engine) Stats() scheduler.Stats { return e.sc.Stats() }

// Snapshot passes through the controller's persistable job-set state.
func (e *Engine) Snapshot() scheduler.Snapshot { return e.sc.Snapshot() }

package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/scheduler"
)

func newEngine(t *testing.T, cfg Config) (*Engine, *scheduler.Scheduler) {
	t.Helper()
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: []float64{4, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	return eng, sc
}

func TestEngineBasic(t *testing.T) {
	eng, _ := newEngine(t, Config{})

	if snap := eng.Current(); snap == nil || snap.Version != 1 || len(snap.Shares) != 0 {
		t.Fatalf("initial snapshot = %+v, want empty version 1", snap)
	}
	if err := eng.AddJob(context.Background(), "a", 1, []float64{4, 0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes: the snapshot published with a's batch is current.
	snap := eng.Current()
	if snap.Version < 2 {
		t.Fatalf("version = %d, want >= 2 after a commit", snap.Version)
	}
	sh, err := eng.Shares(context.Background(), "a")
	if err != nil || len(sh) != 3 {
		t.Fatalf("Shares(a) = %v, %v", sh, err)
	}
	if sh[0] != 4 {
		t.Fatalf("job a share = %v, want 4 at site 0", sh)
	}
	if err := eng.AddJob(context.Background(), "a", 1, []float64{1, 1, 1}, nil); !errors.Is(err, scheduler.ErrDuplicateJob) {
		t.Fatalf("duplicate add err = %v", err)
	}
	if err := eng.UpdateWeight(context.Background(), "a", 2); err != nil {
		t.Fatal(err)
	}
	done, err := eng.ReportProgress(context.Background(), "a", []float64{4, 0, 0})
	if err != nil || !done {
		t.Fatalf("progress = %v, %v, want completed", done, err)
	}
	if _, err := eng.Shares(context.Background(), "a"); !errors.Is(err, scheduler.ErrUnknownJob) {
		t.Fatalf("Shares after completion err = %v", err)
	}
	if err := eng.RemoveJob(context.Background(), "nope"); !errors.Is(err, scheduler.ErrUnknownJob) {
		t.Fatalf("remove unknown err = %v", err)
	}
}

func TestEngineQueuesAndRestore(t *testing.T) {
	eng, _ := newEngine(t, Config{})
	if err := eng.AddQueue(context.Background(), "batch", 2); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddJobInQueue(context.Background(), "batch", "q1", 1, []float64{2, 2, 0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddJob(context.Background(), "solo", 1, []float64{0, 2, 2}, nil); err != nil {
		t.Fatal(err)
	}
	state := eng.Snapshot()
	if len(state.Jobs) != 2 {
		t.Fatalf("state has %d jobs, want 2", len(state.Jobs))
	}
	if err := eng.Restore(context.Background(), scheduler.Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if got := eng.Current().Shares; len(got) != 0 {
		t.Fatalf("shares after empty restore = %v", got)
	}
	if err := eng.Restore(context.Background(), state); err != nil {
		t.Fatal(err)
	}
	if got := eng.Current().Shares; len(got) != 2 {
		t.Fatalf("shares after restore = %v", got)
	}
}

func TestEngineClose(t *testing.T) {
	eng, _ := newEngine(t, Config{})
	if err := eng.AddJob(context.Background(), "a", 1, []float64{1, 1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := eng.AddJob(context.Background(), "b", 1, []float64{1, 1, 1}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("mutation after close err = %v, want ErrClosed", err)
	}
	// Reads still serve the last snapshot.
	if sh, err := eng.Shares(context.Background(), "a"); err != nil || len(sh) != 3 {
		t.Fatalf("read after close = %v, %v", sh, err)
	}
}

// TestEngineBatchingAmortizesSolves submits mutations from many goroutines
// and checks the committer solved fewer times than it mutated.
func TestEngineBatchingAmortizesSolves(t *testing.T) {
	reg := obs.NewRegistry()
	// The window makes batching robust on single-CPU hosts, where the
	// committer can outrun the submitters' wakeups and would otherwise
	// find an empty queue every time.
	eng, sc := newEngine(t, Config{MaxBatch: 64, BatchWindow: 500 * time.Microsecond, Metrics: reg})
	const workers, iters = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("j%d-%d", w, i)
				if err := eng.AddJob(context.Background(), id, 1, []float64{1, 1, 0}, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := sc.Stats()
	if st.Jobs != workers*iters {
		t.Fatalf("jobs = %d, want %d", st.Jobs, workers*iters)
	}
	muts := reg.Counter("engine.mutations_total").Value()
	commits := reg.Counter("engine.commits_total").Value()
	if muts != workers*iters {
		t.Fatalf("mutations_total = %d, want %d", muts, workers*iters)
	}
	if commits >= muts {
		t.Fatalf("commits (%d) not amortized over mutations (%d)", commits, muts)
	}
	if st.Solves > int(commits)+1 { // +1 for the initial publish
		t.Fatalf("solves = %d > commits %d", st.Solves, commits)
	}
	if st.LastSolve <= 0 || st.TotalSolveTime < st.LastSolve {
		t.Fatalf("solve durations not recorded: %+v", st)
	}
	if reg.Histogram("engine.solve_latency").Summary().Count == 0 {
		t.Fatal("solve latency histogram empty")
	}
}

func TestEngineUnbatched(t *testing.T) {
	eng, sc := newEngine(t, Config{MaxBatch: 1})
	for i := 0; i < 10; i++ {
		if err := eng.AddJob(context.Background(), fmt.Sprintf("j%d", i), 1, []float64{1, 0, 1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Every mutation dirties the set, so unbatched mode solves per op
	// (plus the initial empty-state publish, which solves nothing).
	if st := sc.Stats(); st.Solves != 10 {
		t.Fatalf("solves = %d, want 10 in unbatched mode", st.Solves)
	}
}

// TestEngineConcurrentReadersWriters is the engine's race-detector
// workout: mixed adders, removers, progress reporters and weight updaters
// run against lock-free readers. Each reader asserts (1) snapshot versions
// are monotonic, and (2) every snapshot is a complete, capacity-feasible
// allocation (via core's feasibility checker).
func TestEngineConcurrentReadersWriters(t *testing.T) {
	eng, _ := newEngine(t, Config{MaxBatch: 32, BatchWindow: 100 * time.Microsecond})

	const (
		writers    = 4
		readers    = 4
		writerIter = 40
	)
	var stop atomic.Bool
	var writerWG, readerWG sync.WaitGroup

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < writerIter; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if err := eng.AddJob(context.Background(), id, 1, []float64{2, 1, 1}, []float64{8, 4, 4}); err != nil {
					t.Error(err)
					return
				}
				switch i % 4 {
				case 0:
					if err := eng.UpdateWeight(context.Background(), id, float64(1+i%3)); err != nil {
						t.Error(err)
					}
				case 1:
					if _, err := eng.ReportProgress(context.Background(), id, []float64{1, 0, 0}); err != nil {
						t.Error(err)
					}
				case 2:
					if err := eng.RemoveJob(context.Background(), id); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}

	readErrs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			var lastVersion uint64
			for !stop.Load() {
				snap := eng.Current()
				if snap.Version < lastVersion {
					readErrs <- fmt.Errorf("version went backwards: %d after %d", snap.Version, lastVersion)
					return
				}
				lastVersion = snap.Version
				// Complete: exactly the solved instance's jobs, full rows.
				if len(snap.Shares) != len(snap.Inst.JobName) {
					readErrs <- fmt.Errorf("snapshot v%d has %d share rows for %d jobs",
						snap.Version, len(snap.Shares), len(snap.Inst.JobName))
					return
				}
				for _, id := range snap.Inst.JobName {
					if len(snap.Shares[id]) != snap.Inst.NumSites() {
						readErrs <- fmt.Errorf("snapshot v%d: job %q row incomplete", snap.Version, id)
						return
					}
				}
				// Capacity-feasible: no oversubscription, no share beyond
				// demand.
				if err := snap.Allocation().CheckFeasible(1e-6); err != nil {
					readErrs <- fmt.Errorf("snapshot v%d infeasible: %w", snap.Version, err)
					return
				}
			}
		}()
	}

	writerWG.Wait()
	stop.Store(true)
	readerWG.Wait()
	close(readErrs)
	for err := range readErrs {
		t.Fatal(err)
	}
	if v := eng.Current().Version; v < 2 {
		t.Fatalf("final version = %d, want > 1", v)
	}
}

// TestEngineIncrementalTelemetry checks that the incremental-solve
// telemetry flows through the commit path into both the published
// snapshot and the metrics gauges: a single-component mutation on a
// multi-component job set reuses the untouched components, and a
// round-tripped mutation hits the fingerprint cache.
func TestEngineIncrementalTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: []float64{4, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc, Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })

	// Three jobs on disjoint sites: three components.
	if err := eng.AddJob(context.Background(), "a", 1, []float64{4, 0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddJob(context.Background(), "b", 1, []float64{0, 4, 0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddJob(context.Background(), "c", 1, []float64{0, 0, 8}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.UpdateWeight(context.Background(), "b", 5); err != nil {
		t.Fatal(err)
	}
	snap := eng.Current()
	if snap.ComponentsResolved != 1 || snap.ComponentsReused != 2 {
		t.Fatalf("snapshot after single-component mutation: resolved %d reused %d, want 1/2",
			snap.ComponentsResolved, snap.ComponentsReused)
	}
	m := reg.Snapshot()
	if got := m.Gauges["engine.components_reused"]; got != 2 {
		t.Fatalf("components_reused gauge = %g, want 2", got)
	}
	if got := m.Gauges["engine.components_resolved"]; got != 1 {
		t.Fatalf("components_resolved gauge = %g, want 1", got)
	}

	// Reverting the weight round-trips b's component fingerprint: a cache
	// hit, no re-solve, and a positive hit ratio.
	if err := eng.UpdateWeight(context.Background(), "b", 1); err != nil {
		t.Fatal(err)
	}
	snap = eng.Current()
	if snap.ComponentsResolved != 0 || snap.ComponentsReused != 3 {
		t.Fatalf("snapshot after reverted mutation: resolved %d reused %d, want 0/3",
			snap.ComponentsResolved, snap.ComponentsReused)
	}
	m = reg.Snapshot()
	if got := m.Gauges["engine.cache_hit_ratio"]; got <= 0 {
		t.Fatalf("cache_hit_ratio gauge = %g, want > 0 after a fingerprint round-trip", got)
	}
	st := eng.Stats()
	if st.CacheHits == 0 || st.LastReused != 3 {
		t.Fatalf("stats missing incremental accounting: %+v", st)
	}
}

package serve

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/scheduler"
)

// phaseTestConfig makes boundaries deterministic for unit tests: a huge
// interval so only batch quotas (or explicit barriers) end phases.
func phaseTestConfig(maxBatches int) scheduler.PhaseConfig {
	return scheduler.PhaseConfig{
		HotThreshold:  0.3,
		MaxBatches:    maxBatches,
		MaxIntervalMS: 100_000,
		Window:        4,
	}
}

// newPhaseEngine builds a two-component instance — component "a0"
// (jobs a0, a1 on sites 0, 1) and component "b0" (job b0 on site 2) —
// behind an unbatched engine with phase reconciliation armed.
func newPhaseEngine(t *testing.T, ph scheduler.PhaseConfig, reg *obs.Registry) (*Engine, *scheduler.Scheduler) {
	t.Helper()
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: []float64{4, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.SetPhaseConfig(ph); err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc, Config{MaxBatch: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	ctx := context.Background()
	for _, j := range []struct {
		id     string
		demand []float64
	}{
		{"a0", []float64{3, 1, 0}},
		{"a1", []float64{1, 3, 0}},
		{"b0", []float64{0, 0, 4}},
	} {
		if err := eng.AddJob(ctx, j.id, 1, j.demand, []float64{1e6, 1e6, 1e6}); err != nil {
			t.Fatal(err)
		}
	}
	return eng, sc
}

// heatComponent drives enough solo mutations against component a0 to
// fill the classifier window and classify it hot.
func heatComponent(t *testing.T, eng *Engine) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if err := eng.UpdateWeight(ctx, "a0", 1+float64(i%3)); err != nil {
			t.Fatal(err)
		}
	}
	if hs := eng.sc.HotSet(); !hs.Has("a0") {
		t.Fatalf("component a0 not hot after warm-up: %+v", hs)
	}
	// The warm-up itself buffers once the component turns hot; drain so
	// each test starts from a clean phase.
	_ = eng.Snapshot()
	if lag := eng.Current().PhaseLag; lag != 0 {
		t.Fatalf("PhaseLag after warm-up drain = %d, want 0", lag)
	}
}

func TestPhaseBuffersCommutativeOpsOnHotComponents(t *testing.T) {
	reg := obs.NewRegistry()
	eng, sc := newPhaseEngine(t, phaseTestConfig(100), reg)
	heatComponent(t, eng)
	ctx := context.Background()
	buffered0 := reg.Counter("engine.phase_buffered_total").Value()

	// Hot-component weight updates buffer: acknowledged, lag visible.
	if err := eng.UpdateWeight(ctx, "a1", 2.5); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ReportProgress(ctx, "a1", []float64{0.5, 0.5, 0}); err != nil {
		t.Fatal(err)
	}
	snap := eng.Current()
	if snap.PhaseLag != 2 {
		t.Fatalf("PhaseLag = %d, want 2 buffered mutations", snap.PhaseLag)
	}
	if snap.HotComponents == 0 {
		t.Fatalf("HotComponents = 0, want >= 1")
	}
	if got := reg.Counter("engine.phase_buffered_total").Value() - buffered0; got != 2 {
		t.Fatalf("phase_buffered_total delta = %d, want 2", got)
	}

	// Cold-component mutations keep the exact ordered path and do not
	// disturb the buffers.
	if err := eng.UpdateWeight(ctx, "b0", 3); err != nil {
		t.Fatal(err)
	}
	if lag := eng.Current().PhaseLag; lag != 2 {
		t.Fatalf("PhaseLag after cold op = %d, want 2", lag)
	}

	// The engine's scheduler has NOT applied the buffered weight yet...
	if w := jobWeight(t, sc, "a1"); w != 1 {
		t.Fatalf("a1 weight before reconcile = %v, want 1 (buffered)", w)
	}
	// ...but Engine.Snapshot is a barrier: it forces a flush-all so the
	// state it captures is complete.
	state := eng.Snapshot()
	found := false
	for _, j := range state.Jobs {
		if j.ID == "a1" {
			found = true
			if j.Weight != 2.5 {
				t.Fatalf("a1 weight in snapshot = %v, want 2.5", j.Weight)
			}
		}
	}
	if !found {
		t.Fatal("a1 missing from snapshot")
	}
	if lag := eng.Current().PhaseLag; lag != 0 {
		t.Fatalf("PhaseLag after snapshot barrier = %d, want 0", lag)
	}
	if got := reg.Counter("engine.phase_reconciles_total").Value(); got == 0 {
		t.Fatal("phase_reconciles_total = 0, want > 0")
	}
}

func jobWeight(t *testing.T, sc *scheduler.Scheduler, id string) float64 {
	t.Helper()
	for _, j := range sc.Snapshot().Jobs {
		if j.ID == id {
			return j.Weight
		}
	}
	t.Fatalf("job %s not found", id)
	return 0
}

func TestPhaseBatchBoundaryReconciles(t *testing.T) {
	eng, _ := newPhaseEngine(t, phaseTestConfig(3), nil)
	heatComponent(t, eng)
	ctx := context.Background()

	// Each buffered commit advances the phase clock; the third boundary
	// batch reconciles.
	lags := make([]int, 0, 3)
	for i := 0; i < 3; i++ {
		if err := eng.UpdateWeight(ctx, "a1", 2+float64(i)); err != nil {
			t.Fatal(err)
		}
		lags = append(lags, eng.Current().PhaseLag)
	}
	if lags[0] != 1 || lags[1] != 2 || lags[2] != 0 {
		t.Fatalf("PhaseLag sequence = %v, want [1 2 0] (boundary at MaxBatches=3)", lags)
	}
	// Last-writer weight won.
	if w := jobWeight(t, eng.sc, "a1"); w != 4 {
		t.Fatalf("a1 weight after boundary = %v, want 4", w)
	}
}

func TestPhaseIntervalBoundaryReconciles(t *testing.T) {
	ph := phaseTestConfig(1000)
	ph.MaxIntervalMS = 20
	eng, _ := newPhaseEngine(t, ph, nil)
	heatComponent(t, eng)
	ctx := context.Background()

	if err := eng.UpdateWeight(ctx, "a1", 3); err != nil {
		t.Fatal(err)
	}
	if lag := eng.Current().PhaseLag; lag != 1 {
		t.Fatalf("PhaseLag = %d, want 1", lag)
	}
	// The interval timer must end the phase without any further traffic.
	deadline := time.Now().Add(5 * time.Second)
	for eng.Current().PhaseLag != 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval boundary never reconciled the buffered delta")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if w := jobWeight(t, eng.sc, "a1"); w != 3 {
		t.Fatalf("a1 weight after interval boundary = %v, want 3", w)
	}
}

func TestPhaseRemoveForcesReconcile(t *testing.T) {
	reg := obs.NewRegistry()
	eng, _ := newPhaseEngine(t, phaseTestConfig(100), reg)
	heatComponent(t, eng)
	ctx := context.Background()

	if err := eng.UpdateWeight(ctx, "a1", 2); err != nil {
		t.Fatal(err)
	}
	if lag := eng.Current().PhaseLag; lag != 1 {
		t.Fatalf("PhaseLag = %d, want 1", lag)
	}
	// Removing a job in the hot component reconciles its buffer first.
	if err := eng.RemoveJob(ctx, "a0"); err != nil {
		t.Fatal(err)
	}
	if lag := eng.Current().PhaseLag; lag != 0 {
		t.Fatalf("PhaseLag after removal = %d, want 0 (forced reconcile)", lag)
	}
	if got := reg.Counter("engine.phase_forced_reconciles_total").Value(); got == 0 {
		t.Fatal("phase_forced_reconciles_total = 0, want > 0")
	}
	if w := jobWeight(t, eng.sc, "a1"); w != 2 {
		t.Fatalf("a1 weight after forced reconcile = %v, want 2", w)
	}
}

func TestPhaseDisabledByConfigPatch(t *testing.T) {
	eng, _ := newPhaseEngine(t, phaseTestConfig(100), nil)
	heatComponent(t, eng)
	ctx := context.Background()
	if err := eng.UpdateWeight(ctx, "a1", 2); err != nil {
		t.Fatal(err)
	}
	if lag := eng.Current().PhaseLag; lag != 1 {
		t.Fatalf("PhaseLag = %d, want 1", lag)
	}
	// Turning phase reconciliation off flushes outstanding buffers before
	// the config change applies.
	zero := 0.0
	if err := eng.ApplyConfig(ctx, scheduler.ConfigPatch{HotThreshold: &zero}); err != nil {
		t.Fatal(err)
	}
	if lag := eng.Current().PhaseLag; lag != 0 {
		t.Fatalf("PhaseLag after disabling = %d, want 0", lag)
	}
	if w := jobWeight(t, eng.sc, "a1"); w != 2 {
		t.Fatalf("a1 weight after disable flush = %v, want 2", w)
	}
	// And further hot-path traffic applies ordered.
	if err := eng.UpdateWeight(ctx, "a1", 5); err != nil {
		t.Fatal(err)
	}
	if lag := eng.Current().PhaseLag; lag != 0 {
		t.Fatalf("PhaseLag with phase disabled = %d, want 0", lag)
	}
}

// phaseStreamOp is one generated mutation of an equivalence stream.
type phaseStreamOp struct {
	kind   int // 0 = weight, 1 = progress, 2 = add, 3 = remove
	id     string
	weight float64
	demand []float64
	done   []float64
}

// genPhaseStream builds a small zipf-flavored mutation stream over an
// 8-component, 2-jobs-per-component base (sites 2 per component). Ops are
// always valid against sequential application: adds are unique, removes
// target live transients, progress never exhausts a site.
func genPhaseStream(seed int64, nops int) (capacity []float64, base []phaseStreamOp, ops []phaseStreamOp) {
	const comps, jobsPer, sitesPer = 8, 2, 2
	rng := rand.New(rand.NewSource(seed))
	m := comps * sitesPer
	capacity = make([]float64, m)
	for s := range capacity {
		capacity[s] = 4
	}
	demandFor := func(c int) []float64 {
		row := make([]float64, m)
		row[c*sitesPer] = 1 + rng.Float64()
		if rng.Intn(2) == 0 {
			row[c*sitesPer+1] = 0.5 + rng.Float64()
		}
		return row
	}
	live := map[string][]float64{}
	for c := 0; c < comps; c++ {
		for i := 0; i < jobsPer; i++ {
			id := fmt.Sprintf("c%d-j%d", c, i)
			d := demandFor(c)
			base = append(base, phaseStreamOp{kind: 2, id: id, weight: 1, demand: d})
			live[id] = d
		}
	}
	// Popularity ∝ zipf²: component 0 absorbs most of the stream, so the
	// classifier heats it quickly even in a short stream.
	pop := make([]float64, comps)
	for c := range pop {
		pop[c] = math.Pow(float64(c+1), -2.2)
	}
	pick := func() int {
		var sum float64
		for _, w := range pop {
			sum += w
		}
		x := rng.Float64() * sum
		for c, w := range pop {
			if x -= w; x < 0 {
				return c
			}
		}
		return comps - 1
	}
	memberOf := func(c int) (string, []float64) {
		ids := make([]string, 0, 4)
		for id, d := range live {
			if d[c*sitesPer] > 0 {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			return "", nil
		}
		// Deterministic pick independent of map order.
		best := ids[0]
		for _, id := range ids[1:] {
			if id < best {
				best = id
			}
		}
		return best, live[best]
	}
	next := 0
	for len(ops) < nops {
		c := pick()
		id, d := memberOf(c)
		switch p := rng.Float64(); {
		case p < 0.55 && id != "":
			ops = append(ops, phaseStreamOp{kind: 0, id: id, weight: 0.5 + 0.25*float64(rng.Intn(10))})
		case p < 0.75 && id != "":
			done := make([]float64, m)
			for s, v := range d {
				if v > 0 {
					// Tiny against the 1e6 work scale: never exhausts.
					done[s] = v * rng.Float64() * 0.1
				}
			}
			ops = append(ops, phaseStreamOp{kind: 1, id: id, done: done})
		case p < 0.92 || id == "":
			tid := fmt.Sprintf("c%d-t%d", c, next)
			next++
			td := demandFor(c)
			live[tid] = td
			ops = append(ops, phaseStreamOp{kind: 2, id: tid, weight: 1, demand: td})
		default:
			if len(live) <= comps { // keep components populated
				continue
			}
			delete(live, id)
			ops = append(ops, phaseStreamOp{kind: 3, id: id})
		}
	}
	return capacity, base, ops
}

func applyPhaseOpEngine(ctx context.Context, eng *Engine, op phaseStreamOp) error {
	switch op.kind {
	case 0:
		return eng.UpdateWeight(ctx, op.id, op.weight)
	case 1:
		_, err := eng.ReportProgress(ctx, op.id, op.done)
		return err
	case 2:
		return eng.AddJob(ctx, op.id, op.weight, op.demand, scaleRow(op.demand, 1e6))
	default:
		return eng.RemoveJob(ctx, op.id)
	}
}

func applyPhaseOpScheduler(sc *scheduler.Scheduler, op phaseStreamOp) error {
	switch op.kind {
	case 0:
		return sc.UpdateWeight(op.id, op.weight)
	case 1:
		_, err := sc.ReportProgress(op.id, op.done)
		return err
	case 2:
		return sc.AddJob(op.id, op.weight, op.demand, scaleRow(op.demand, 1e6))
	default:
		return sc.RemoveJob(op.id)
	}
}

func scaleRow(row []float64, k float64) []float64 {
	out := make([]float64, len(row))
	for i, v := range row {
		out[i] = v * k
	}
	return out
}

// comparePhaseAllocs fails the test if the engine's published allocation
// differs from the ordered reference's beyond tol.
func comparePhaseAllocs(t *testing.T, eng *Engine, ref *scheduler.Scheduler, tol float64, when string) {
	t.Helper()
	want, err := ref.Allocation()
	if err != nil {
		t.Fatal(err)
	}
	got := eng.Current().Shares
	if len(got) != len(want) {
		t.Fatalf("%s: engine has %d jobs, reference %d", when, len(got), len(want))
	}
	for id, ws := range want {
		gs, ok := got[id]
		if !ok {
			t.Fatalf("%s: job %s missing from engine allocation", when, id)
		}
		for s := range ws {
			if math.Abs(gs[s]-ws[s]) > tol {
				t.Fatalf("%s: job %s site %d: engine %v, reference %v (tol %g)",
					when, id, s, gs[s], ws[s], tol)
			}
		}
	}
}

// TestPhaseEquivalenceProperty is the tentpole's correctness property:
// over 200 randomized contention streams (100 per policy, AMF and
// Enhanced-AMF), whenever the published snapshot reports PhaseLag == 0 —
// i.e. at every phase boundary — the phase-reconciled allocation equals
// the exact ordered path's allocation on the same mutation prefix to
// 1e-9 of the instance scale. Run it under -race in CI: the phase
// machinery is committer-only state and must stay that way.
func TestPhaseEquivalenceProperty(t *testing.T) {
	const streams = 100
	const nops = 40
	for _, pol := range []string{"amf", "amf-enhanced"} {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			for stream := 0; stream < streams; stream++ {
				runPhaseEquivalenceStream(t, pol, int64(stream), nops)
			}
		})
	}
}

func runPhaseEquivalenceStream(t *testing.T, pol string, seed int64, nops int) {
	t.Helper()
	capacity, base, ops := genPhaseStream(seed, nops)
	scale := 0.0
	for _, c := range capacity {
		scale = math.Max(scale, c)
	}
	tol := 1e-9 * scale

	sc, err := scheduler.New(scheduler.Config{SiteCapacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.SetPolicyName(pol); err != nil {
		t.Fatal(err)
	}
	// Aggressive knobs: tiny window, low threshold, short phases — many
	// boundaries per stream, so the property is exercised repeatedly.
	if err := sc.SetPhaseConfig(scheduler.PhaseConfig{
		HotThreshold:  0.3,
		MaxBatches:    3,
		MaxIntervalMS: 100_000,
		Window:        4,
	}); err != nil {
		t.Fatal(err)
	}
	ref, err := scheduler.New(scheduler.Config{SiteCapacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetPolicyName(pol); err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc, Config{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx := context.Background()
	for _, op := range base {
		if err := applyPhaseOpEngine(ctx, eng, op); err != nil {
			t.Fatalf("seed %d base %+v: %v", seed, op, err)
		}
		if err := applyPhaseOpScheduler(ref, op); err != nil {
			t.Fatalf("seed %d base %+v: %v", seed, op, err)
		}
	}
	for i, op := range ops {
		if err := applyPhaseOpEngine(ctx, eng, op); err != nil {
			t.Fatalf("seed %d op %d %+v: engine: %v", seed, i, op, err)
		}
		if err := applyPhaseOpScheduler(ref, op); err != nil {
			t.Fatalf("seed %d op %d %+v: reference: %v", seed, i, op, err)
		}
		if eng.Current().PhaseLag == 0 {
			comparePhaseAllocs(t, eng, ref, tol, fmt.Sprintf("seed %d after op %d (%s)", seed, i, pol))
		}
	}
	// Final barrier: drain every buffer and compare the end states.
	_ = eng.Snapshot()
	if lag := eng.Current().PhaseLag; lag != 0 {
		t.Fatalf("seed %d: PhaseLag = %d after final barrier", seed, lag)
	}
	comparePhaseAllocs(t, eng, ref, tol, fmt.Sprintf("seed %d final (%s)", seed, pol))
}

func TestCacheWindowGauge(t *testing.T) {
	reg := obs.NewRegistry()
	eng, _ := newEngine(t, Config{Metrics: reg})
	g := reg.Gauge("engine.cache_hit_ratio_window")

	// Deltas fold into the window: 8 hits, 2 misses -> 0.8.
	eng.observeCacheWindow(0, 0)
	eng.observeCacheWindow(4, 1)
	eng.observeCacheWindow(8, 2)
	if got := g.Value(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("windowed ratio = %v, want 0.8", got)
	}
	// A counter reset (solver reinstalled) restarts the window instead of
	// folding a negative delta.
	eng.observeCacheWindow(0, 0)
	if got := g.Value(); got != 0 {
		t.Fatalf("windowed ratio after reset = %v, want 0", got)
	}
	eng.observeCacheWindow(3, 1)
	if got := g.Value(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("windowed ratio after restart = %v, want 0.75", got)
	}
	// Old commits age out of the 64-commit window: drown the early misses
	// with hit-only commits, then check the ratio converges to 1.
	h, m := int64(3), int64(1)
	for i := 0; i < cacheWindowCommits; i++ {
		h += 5
		eng.observeCacheWindow(h, m)
	}
	if got := g.Value(); got != 1 {
		t.Fatalf("windowed ratio after aging out misses = %v, want 1", got)
	}
}

package scheduler

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Snapshot is the serializable state of a controller: the live job set
// and the declared queues. Configuration (capacities) is not part of the
// snapshot — it belongs to the deployment, not the state. The active
// policy's name IS recorded, as a header: an allocation state only means
// what its discipline says it means, so Restore (and therefore WAL
// recovery and replica replay) refuses a snapshot taken under a
// different policy instead of silently reinterpreting it.
type Snapshot struct {
	// Policy is the wire name of the policy active when the snapshot was
	// taken ("" in pre-policy-layer snapshots, accepted for
	// compatibility).
	Policy string `json:"policy,omitempty"`
	Jobs   []Job  `json:"jobs"`
	// Queues maps declared queue names to their weights.
	Queues map[string]float64 `json:"queues,omitempty"`
	// ExternalWeight is the cluster router's weight-sum broadcast value in
	// effect when the snapshot was taken (zero standalone); restoring it
	// keeps replica replay and compacted-WAL recovery deterministic.
	ExternalWeight float64 `json:"external_weight,omitempty"`
	// Solver and Phase carry the runtime-tuning knobs in effect when the
	// snapshot was taken. Runtime tuning is WAL-logged (OpSetConfig), so
	// compaction — which folds the WAL into this snapshot — must preserve
	// it or a recovered controller would silently revert to boot defaults.
	// Nil (pre-config-surface snapshots) leaves the controller's current
	// values untouched.
	Solver *SolverSnapshot `json:"solver,omitempty"`
	Phase  *PhaseConfig    `json:"phase,omitempty"`
}

// SolverSnapshot is the persisted approximate-path tuning.
type SolverSnapshot struct {
	ApproxEpsilon   float64 `json:"approx_epsilon"`
	ApproxThreshold int     `json:"approx_threshold"`
}

// Snapshot captures the current job set for persistence.
func (sc *Scheduler) Snapshot() Snapshot {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	snap := Snapshot{
		Policy:         sc.cfg.Policy.Name(),
		Jobs:           make([]Job, 0, len(sc.order)),
		ExternalWeight: sc.externalWeight,
		Solver: &SolverSnapshot{
			ApproxEpsilon:   sc.cfg.Solver.ApproxEpsilon,
			ApproxThreshold: sc.cfg.Solver.ApproxThreshold,
		},
		Phase: &PhaseConfig{},
	}
	*snap.Phase = sc.cfg.Phase
	if len(sc.queueWeight) > 0 {
		snap.Queues = make(map[string]float64, len(sc.queueWeight))
		for q, w := range sc.queueWeight {
			snap.Queues[q] = w
		}
	}
	for _, id := range sc.order {
		if id == "" { // removal tombstone
			continue
		}
		j := sc.jobs[id]
		snap.Jobs = append(snap.Jobs, Job{
			ID:        j.ID,
			Weight:    j.Weight,
			Queue:     sc.jobQueue[id],
			Demand:    append([]float64(nil), j.Demand...),
			Remaining: append([]float64(nil), j.Remaining...),
		})
	}
	return snap
}

// Restore replaces the controller's job set with the snapshot's. The
// snapshot must have been taken from a controller with the same site
// count. Counters (Stats) are not restored.
func (sc *Scheduler) Restore(snap Snapshot) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if snap.Policy != "" && snap.Policy != sc.cfg.Policy.Name() {
		return fmt.Errorf("scheduler: snapshot was taken under policy %q, controller runs %q",
			snap.Policy, sc.cfg.Policy.Name())
	}
	if w := snap.ExternalWeight; w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("scheduler: snapshot has invalid external weight %g", w)
	}
	if snap.Solver != nil {
		if err := validateApproxConfig(snap.Solver.ApproxEpsilon, snap.Solver.ApproxThreshold); err != nil {
			return fmt.Errorf("scheduler: snapshot solver config: %w", err)
		}
	}
	if snap.Phase != nil {
		if err := snap.Phase.validate(); err != nil {
			return fmt.Errorf("scheduler: snapshot phase config: %w", err)
		}
	}
	for _, j := range snap.Jobs {
		if len(j.Demand) != sc.NumSites() || len(j.Remaining) != sc.NumSites() {
			return fmt.Errorf("scheduler: snapshot job %q has %d sites, controller has %d",
				j.ID, len(j.Demand), sc.NumSites())
		}
		if j.ID == "" {
			return fmt.Errorf("scheduler: snapshot contains a job without an ID")
		}
	}
	seen := map[string]bool{}
	for _, j := range snap.Jobs {
		if seen[j.ID] {
			return fmt.Errorf("scheduler: snapshot contains duplicate job %q", j.ID)
		}
		seen[j.ID] = true
		if j.Queue != "" {
			if _, ok := snap.Queues[j.Queue]; !ok {
				return fmt.Errorf("scheduler: snapshot job %q references undeclared queue %q",
					j.ID, j.Queue)
			}
		}
	}
	sc.jobs = make(map[string]*Job, len(snap.Jobs))
	sc.order = sc.order[:0]
	sc.orderIdx = make(map[string]int, len(snap.Jobs))
	sc.holes = 0
	sc.shares = map[string][]float64{}
	sc.jobQueue = map[string]string{}
	sc.queueWeight = map[string]float64{}
	sc.dirty = make(map[string]bool, len(snap.Jobs))
	sc.externalWeight = snap.ExternalWeight
	for q, w := range snap.Queues {
		if w <= 0 {
			w = 1
		}
		sc.queueWeight[q] = w
	}
	for _, j := range snap.Jobs {
		w := j.Weight
		if w <= 0 {
			w = 1
		}
		sc.jobs[j.ID] = &Job{
			ID:        j.ID,
			Weight:    w,
			Demand:    append([]float64(nil), j.Demand...),
			Remaining: append([]float64(nil), j.Remaining...),
		}
		if j.Queue != "" {
			sc.jobQueue[j.ID] = j.Queue
		}
		sc.orderIdx[j.ID] = len(sc.order)
		sc.order = append(sc.order, j.ID)
		// A restored job may reuse the name of a pre-restore job with
		// different content: the incremental solver must revalidate it.
		sc.dirty[j.ID] = true
	}
	if snap.Solver != nil {
		sc.setApproxLocked(snap.Solver.ApproxEpsilon, snap.Solver.ApproxThreshold)
	}
	if snap.Phase != nil {
		sc.setPhaseLocked(*snap.Phase)
	}
	// Component identities restart with the job set; classification must
	// re-accumulate rather than trust pre-restore hit counts.
	sc.resetHotLocked()
	sc.needSolve = true
	return nil
}

// WriteSnapshot serializes the controller state as JSON.
func (sc *Scheduler) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sc.Snapshot())
}

// ReadSnapshot restores controller state from JSON.
func (sc *Scheduler) ReadSnapshot(r io.Reader) error {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("scheduler: decoding snapshot: %w", err)
	}
	return sc.Restore(snap)
}

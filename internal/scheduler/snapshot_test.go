package scheduler

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/policy"
)

func TestSnapshotRoundTrip(t *testing.T) {
	a := newTestScheduler(t, 2, 2)
	_ = a.AddJob("x", 2, []float64{2, 1}, []float64{5, 3})
	_ = a.AddJob("y", 1, []float64{1, 1}, nil)
	_, _ = a.ReportProgress("x", []float64{1, 0})

	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	b := newTestScheduler(t, 2, 2)
	if err := b.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// The restored controller produces the same allocation.
	ax, err := a.Shares("x")
	if err != nil {
		t.Fatal(err)
	}
	bx, err := b.Shares("x")
	if err != nil {
		t.Fatal(err)
	}
	for s := range ax {
		if ax[s] != bx[s] {
			t.Fatalf("restored shares differ at site %d: %g vs %g", s, ax[s], bx[s])
		}
	}
	// Remaining work carried over: exhaust it and the job completes.
	done, err := b.ReportProgress("x", []float64{4, 3})
	if err != nil || !done {
		t.Fatalf("done=%v err=%v (remaining work not restored)", done, err)
	}
}

func TestRestoreValidation(t *testing.T) {
	sc := newTestScheduler(t, 2)
	if err := sc.Restore(Snapshot{Jobs: []Job{{ID: "a", Demand: []float64{1}, Remaining: []float64{1, 2}}}}); err == nil {
		t.Fatal("mismatched sites accepted")
	}
	if err := sc.Restore(Snapshot{Jobs: []Job{{Demand: []float64{1, 1}, Remaining: []float64{1, 1}}}}); err == nil {
		t.Fatal("empty ID accepted")
	}
	if err := sc.Restore(Snapshot{Jobs: []Job{
		{ID: "a", Demand: []float64{1, 1}, Remaining: []float64{1, 1}},
		{ID: "a", Demand: []float64{1, 1}, Remaining: []float64{1, 1}},
	}}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestRestoreReplacesExistingJobs(t *testing.T) {
	sc := newTestScheduler(t, 1)
	_ = sc.AddJob("old", 1, []float64{1}, nil)
	err := sc.Restore(Snapshot{Jobs: []Job{
		{ID: "new", Weight: 1, Demand: []float64{1}, Remaining: []float64{1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Shares("old"); err == nil {
		t.Fatal("old job survived restore")
	}
	if _, err := sc.Shares("new"); err != nil {
		t.Fatal(err)
	}
}

func TestReadSnapshotMalformed(t *testing.T) {
	sc := newTestScheduler(t, 1)
	if err := sc.ReadSnapshot(strings.NewReader("{nope")); err == nil {
		t.Fatal("malformed snapshot accepted")
	}
}

func TestSnapshotDefaultWeight(t *testing.T) {
	sc, err := New(Config{SiteCapacity: []float64{2}, Policy: policy.AMF})
	if err != nil {
		t.Fatal(err)
	}
	err = sc.Restore(Snapshot{Jobs: []Job{
		{ID: "w0", Weight: 0, Demand: []float64{2}, Remaining: []float64{2}},
		{ID: "w1", Weight: 1, Demand: []float64{2}, Remaining: []float64{2}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sc.Aggregate("w0")
	b, _ := sc.Aggregate("w1")
	if a != b {
		t.Fatalf("zero weight not defaulted: %g vs %g", a, b)
	}
}

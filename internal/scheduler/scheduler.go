// Package scheduler provides a long-running allocation controller on top
// of the AMF allocators: the integration surface a cluster manager (YARN-,
// Mesos- or Kubernetes-style) would embed. It maintains a live job set,
// re-solves the fair allocation when the set or the demand topology
// changes, applies hysteresis so progress reports do not cause allocation
// churn, and exposes the current shares for actuation.
//
// The controller is deliberately synchronous and deterministic: mutations
// record the touched job IDs in a dirty set, and Allocation()/Shares()
// lazily re-solve. The allocation discipline is a policy.Policy chosen
// per controller (and switchable at runtime via SetPolicy): policies that
// declare incremental support (AMF, Enhanced AMF) re-solve through
// core.IncrementalSolver — only the connected components the dirty jobs
// belong to are re-solved, the rest are spliced from carried or cached
// results — while the rest solve from scratch (DRF brings its own
// policy-owned component cache). All methods are safe for concurrent use.
package scheduler

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
)

// Sentinel errors for callers that need to distinguish failure kinds
// (e.g. to map them onto HTTP status codes).
var (
	// ErrUnknownJob is returned for operations on a job ID the controller
	// does not hold.
	ErrUnknownJob = errors.New("scheduler: unknown job")
	// ErrDuplicateJob is returned when adding an ID that already exists.
	ErrDuplicateJob = errors.New("scheduler: job already exists")
)

// Config parameterizes a Scheduler.
type Config struct {
	// SiteCapacity is the per-site resource capacity (required).
	SiteCapacity []float64
	// Policy selects the allocation discipline (default policy.AMF). Use
	// policy.ForName to construct one from its wire name; stateful policies
	// (DRF's result cache) must not be shared across controllers.
	Policy policy.Policy
	// Solver overrides the default core solver.
	Solver *core.Solver
	// DisableIncremental forces every solve to run from scratch, even under
	// the AMF/Enhanced-AMF policies that support incremental re-solving.
	// Used by benchmarks and as the reference in equivalence tests.
	DisableIncremental bool
	// ApproxEpsilon and ApproxThreshold arm the approximate water-filling
	// fast path on the underlying solver (see core.Solver): components
	// larger than ApproxThreshold jobs+edges solve approximately with
	// per-job aggregates within ApproxEpsilon of the instance scale. Both
	// zero (the default) keeps every solve exact. Ignored when Solver is
	// supplied with its own knobs set.
	ApproxEpsilon   float64
	ApproxThreshold int
	// Phase configures Doppel-style phase reconciliation for hot
	// components (see PhaseConfig). The zero value disables it. The
	// scheduler itself only carries the knobs and the hot/cold classifier;
	// delta buffering happens in the serving engine's committer.
	Phase PhaseConfig
	// OnSolve, when set, is invoked after every allocator run with its
	// wall-clock duration — the instrumentation hook internal/serve uses to
	// feed solve-latency histograms. It is called with the controller's
	// mutex held and must not call back into the Scheduler.
	OnSolve func(time.Duration)
}

// Job is the controller's view of one running job. The JSON form is the
// snapshot wire format.
type Job struct {
	ID     string  `json:"id"`
	Weight float64 `json:"weight"`
	// Queue is the named queue the job belongs to ("" = default queue).
	Queue string `json:"queue,omitempty"`
	// Demand[s] is the job's maximum useful parallelism at site s.
	Demand []float64 `json:"demand"`
	// Remaining[s] is the outstanding work at site s; when it reaches zero
	// the site is dropped from the job's demand.
	Remaining []float64 `json:"remaining"`

	// instDemand/instWork are the immutable rows installed into solver
	// views (see viewLocked). They are snapshots of Demand/Remaining,
	// rebuilt lazily after a mutation (nil = stale); once installed in a
	// view they are never written again, so published snapshots stay
	// intact while the mutable rows above keep changing.
	instDemand []float64
	instWork   []float64
}

// Stats reports controller activity counters. It is the single source of
// truth for solve accounting: /v1/stats and the internal/obs metrics both
// report these numbers.
type Stats struct {
	// Solves counts allocator invocations.
	Solves int
	// Skipped counts queries served from the cached allocation.
	Skipped int
	// Jobs is the current number of active jobs.
	Jobs int
	// Completed counts jobs that finished (all remaining work zero).
	Completed int
	// LastSolve is the wall-clock duration of the most recent allocator
	// run (zero if the controller has never solved).
	LastSolve time.Duration
	// TotalSolveTime accumulates wall-clock time spent in the allocator.
	TotalSolveTime time.Duration
	// LastComponents is the number of connected components of the demand
	// graph the most recent solve decomposed into (see core.SolveStats);
	// zero when the most recent solve never ran the core solver (e.g.
	// PS-MMF).
	LastComponents int
	// LastLargestComponent is the job count of the largest component of
	// the most recent solve.
	LastLargestComponent int
	// LastSpeedup is the parallel speedup of the most recent solve
	// (sequential component time / wall time; 1 for monolithic solves).
	LastSpeedup float64
	// LastReused is the number of components the most recent solve did NOT
	// re-solve: spliced from the previous solve's results or resurrected
	// from the fingerprint cache. Zero for from-scratch solves.
	LastReused int
	// LastResolved is the number of components the most recent solve
	// actually re-solved.
	LastResolved int
	// CacheHits/CacheMisses accumulate component fingerprint-cache lookups
	// across the controller's lifetime (incremental path only).
	CacheHits   int64
	CacheMisses int64
	// GlobalInvalidations counts Enhanced-AMF floor invalidations: solves
	// where a weight-sum change forced every component through
	// revalidation.
	GlobalInvalidations int64
	// LastApproxComponents is how many components of the most recent solve
	// routed through the approximate water-filling fast path;
	// LastApproxErrorBound is their largest certified per-job deviation
	// from the exact allocation (absolute resource units). Both zero when
	// the most recent solve was fully exact.
	LastApproxComponents int
	LastApproxErrorBound float64
}

// Scheduler is the live allocation controller.
type Scheduler struct {
	mu  sync.Mutex
	cfg Config
	// order is insertion order with "" tombstones left by removals;
	// orderIdx maps a live job ID to its slot and holes counts tombstones.
	// compactLocked squeezes the holes out when they accumulate, keeping
	// removal O(1) amortized instead of an O(n) scan per removal.
	order    []string
	orderIdx map[string]int
	holes    int
	jobs     map[string]*Job
	// shares holds the current allocation as immutable rows: each row is
	// replaced wholesale on re-solve, never written in place, so views
	// handed to Resolve callers stay valid snapshots.
	shares map[string][]float64
	// dirty is the set of job IDs mutated since the incremental solver
	// last ran; needSolve records whether any mutation happened since the
	// last solve of any kind. The hierarchical fallback clears needSolve
	// but deliberately keeps dirty: it tracks what the incremental solver
	// has not yet seen. The flat path (no incremental solver exists)
	// clears both — a later policy switch re-marks every live job itself.
	dirty     map[string]bool
	needSolve bool
	inc       *core.IncrementalSolver
	capRow    []float64 // immutable capacity row shared by all views
	// externalWeight is the share weight held by jobs on other cluster
	// shards (core.Instance.ExternalWeight); zero standalone.
	externalWeight float64
	stats          Stats
	lastSeq        uint64 // core SolveStats.Seq already folded into stats

	queueWeight map[string]float64 // declared queues (see queues.go)
	jobQueue    map[string]string  // job -> queue ("" = default)

	// hot is the hot/cold classifier state (see hotset.go); hotSet is the
	// immutable classification snapshot the serving engine consumes. Both
	// nil while phase reconciliation is disabled.
	hot    *hotTracker
	hotSet *HotSet
}

// New returns an empty controller.
func New(cfg Config) (*Scheduler, error) {
	if len(cfg.SiteCapacity) == 0 {
		return nil, fmt.Errorf("scheduler: no sites")
	}
	for s, c := range cfg.SiteCapacity {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("scheduler: invalid capacity %g at site %d", c, s)
		}
	}
	if err := validateApproxConfig(cfg.ApproxEpsilon, cfg.ApproxThreshold); err != nil {
		return nil, err
	}
	if err := cfg.Phase.validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		cfg.Policy = policy.AMF
	}
	if cfg.Solver == nil {
		cfg.Solver = &core.Solver{SkipJCTRefine: true}
	}
	if cfg.ApproxEpsilon != 0 || cfg.ApproxThreshold != 0 {
		cfg.Solver.ApproxEpsilon = cfg.ApproxEpsilon
		cfg.Solver.ApproxThreshold = cfg.ApproxThreshold
	} else {
		cfg.ApproxEpsilon = cfg.Solver.ApproxEpsilon
		cfg.ApproxThreshold = cfg.Solver.ApproxThreshold
	}
	sc := &Scheduler{
		cfg:      cfg,
		orderIdx: make(map[string]int),
		jobs:     make(map[string]*Job),
		shares:   make(map[string][]float64),
		dirty:    make(map[string]bool),
		capRow:   append([]float64(nil), cfg.SiteCapacity...),
	}
	sc.installIncrementalLocked()
	return sc, nil
}

// installIncrementalLocked (re)builds the incremental solver according to
// the current policy's declared capabilities. Policies whose shares
// depend only on weights, demands and capacities — all captured by the
// component fingerprint — declare Incremental and ride the dirty-set
// path; the rest (AMF+JCT's work-dependent split, PS-MMF, DRF, propfair)
// solve from scratch, DRF through its own policy-owned result cache.
func (sc *Scheduler) installIncrementalLocked() {
	caps := sc.cfg.Policy.Capabilities()
	if !sc.cfg.DisableIncremental && caps.Incremental {
		sc.inc = &core.IncrementalSolver{
			Solver:   sc.cfg.Solver,
			Enhanced: caps.GlobalWeightFloors,
		}
	} else {
		sc.inc = nil
	}
}

// PolicyName reports the active policy's wire name.
func (sc *Scheduler) PolicyName() string {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.cfg.Policy.Name()
}

// GlobalWeightFloors reports whether the active policy floors every job
// at its global equal share (Enhanced-AMF semantics). Explanations use it
// to decide whether to derive and report floor evidence.
func (sc *Scheduler) GlobalWeightFloors() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.cfg.Policy.Capabilities().GlobalWeightFloors
}

// Explain derives the allocation explanation for the current job set: it
// re-solves if needed and explains the installed shares against the same
// instance view under one lock acquisition. Standalone callers (tests,
// read replicas) use this directly; the serving engine instead explains
// its published RCU snapshot so the evidence matches what readers see.
func (sc *Scheduler) Explain() (*core.Explanation, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if err := sc.solveLocked(); err != nil {
		return nil, err
	}
	in := sc.viewLocked()
	share := make([][]float64, len(in.JobName))
	for i, id := range in.JobName {
		share[i] = sc.shares[id]
		if share[i] == nil {
			share[i] = make([]float64, in.NumSites())
		}
	}
	var floors []float64
	if sc.cfg.Policy.Capabilities().GlobalWeightFloors {
		floors = core.EqualShares(in)
	}
	return core.Explain(in, share, floors), nil
}

// SetPolicyName switches the allocation discipline at runtime; see
// SetPolicy.
func (sc *Scheduler) SetPolicyName(name string) error {
	p, err := policy.ForName(name)
	if err != nil {
		return err
	}
	return sc.SetPolicy(p)
}

// SetPolicy switches the allocation discipline at runtime. The switch is
// a clean break: all carried incremental state is dropped, every live job
// is marked dirty, and the next query runs a full resolve under the new
// policy — no row computed under the old discipline can survive. Setting
// a policy with the old one's name and fingerprint is a no-op.
func (sc *Scheduler) SetPolicy(p policy.Policy) error {
	if p == nil {
		return fmt.Errorf("scheduler: nil policy")
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.setPolicyLocked(p)
	return nil
}

func (sc *Scheduler) setPolicyLocked(p policy.Policy) {
	old := sc.cfg.Policy
	if p.Name() == old.Name() && p.Fingerprint() == old.Fingerprint() {
		return
	}
	sc.cfg.Policy = p
	sc.installIncrementalLocked()
	sc.resetHotLocked() // component identities and telemetry are per-discipline
	clear(sc.dirty)
	for id := range sc.jobs {
		sc.dirty[id] = true
	}
	sc.needSolve = true
}

// NumSites reports the number of sites the controller manages.
func (sc *Scheduler) NumSites() int { return len(sc.cfg.SiteCapacity) }

// markDirtyLocked records that a job's solver-relevant state changed.
func (sc *Scheduler) markDirtyLocked(id string) {
	sc.dirty[id] = true
	sc.needSolve = true
}

// JobSpec describes one job registration: the argument form shared by
// AddJob, the atomic bulk AddJobs, and the WAL's logged mutations.
type JobSpec struct {
	ID     string  `json:"id"`
	Weight float64 `json:"weight,omitempty"`
	// Queue, when non-empty, must name a queue declared via AddQueue.
	Queue  string    `json:"queue,omitempty"`
	Demand []float64 `json:"demand"`
	// Work may be nil, meaning work == demand.
	Work []float64 `json:"work,omitempty"`
}

// validateSpecLocked checks one registration against the current state
// without mutating anything.
func (sc *Scheduler) validateSpecLocked(sp JobSpec) error {
	if sp.ID == "" {
		return fmt.Errorf("scheduler: job ID must be non-empty")
	}
	if _, ok := sc.jobs[sp.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateJob, sp.ID)
	}
	if len(sp.Demand) != sc.NumSites() {
		return fmt.Errorf("scheduler: job %q has %d demand entries for %d sites",
			sp.ID, len(sp.Demand), sc.NumSites())
	}
	if sp.Work != nil && len(sp.Work) != sc.NumSites() {
		return fmt.Errorf("scheduler: job %q has %d work entries for %d sites",
			sp.ID, len(sp.Work), sc.NumSites())
	}
	for s, d := range sp.Demand {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("scheduler: job %q invalid demand %g at site %d", sp.ID, d, s)
		}
	}
	if sp.Queue != "" {
		if _, declared := sc.queueWeight[sp.Queue]; !declared {
			return fmt.Errorf("scheduler: unknown queue %q", sp.Queue)
		}
	}
	return nil
}

// addSpecLocked registers a validated spec.
func (sc *Scheduler) addSpecLocked(sp JobSpec) {
	weight := sp.Weight
	if weight <= 0 {
		weight = 1
	}
	j := &Job{
		ID:     sp.ID,
		Weight: weight,
		Demand: append([]float64(nil), sp.Demand...),
	}
	if sp.Work != nil {
		j.Remaining = append([]float64(nil), sp.Work...)
	} else {
		j.Remaining = append([]float64(nil), sp.Demand...)
	}
	sc.jobs[sp.ID] = j
	if sp.Queue != "" {
		if sc.jobQueue == nil {
			sc.jobQueue = map[string]string{}
		}
		sc.jobQueue[sp.ID] = sp.Queue
	}
	sc.orderIdx[sp.ID] = len(sc.order)
	sc.order = append(sc.order, sp.ID)
	sc.markDirtyLocked(sp.ID)
}

// AddJob registers a job. work may be nil, meaning work == demand.
// Weight <= 0 defaults to 1.
func (sc *Scheduler) AddJob(id string, weight float64, demand, work []float64) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sp := JobSpec{ID: id, Weight: weight, Demand: demand, Work: work}
	if err := sc.validateSpecLocked(sp); err != nil {
		return err
	}
	sc.addSpecLocked(sp)
	return nil
}

// BatchError reports an atomic bulk registration that was rejected.
// Errs is index-aligned with the submitted specs: nil entries were
// individually valid but aborted because a sibling failed.
type BatchError struct {
	Errs []error
}

func (e *BatchError) Error() string {
	failed := 0
	var first error
	for _, err := range e.Errs {
		if err != nil {
			failed++
			if first == nil {
				first = err
			}
		}
	}
	return fmt.Sprintf("scheduler: batch rejected, %d of %d jobs invalid (first: %v)",
		failed, len(e.Errs), first)
}

// AddJobs atomically registers every spec or none: all specs are
// validated against the current state (and against each other) before
// anything is applied, so a rejected batch leaves the controller
// untouched. On rejection the returned error is a *BatchError with
// per-spec detail.
func (sc *Scheduler) AddJobs(specs []JobSpec) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	errs := make([]error, len(specs))
	failed := false
	seen := make(map[string]bool, len(specs))
	for i, sp := range specs {
		err := sc.validateSpecLocked(sp)
		if err == nil && seen[sp.ID] {
			err = fmt.Errorf("%w: %q duplicated within the batch", ErrDuplicateJob, sp.ID)
		}
		seen[sp.ID] = true
		if err != nil {
			errs[i] = err
			failed = true
		}
	}
	if failed {
		return &BatchError{Errs: errs}
	}
	for _, sp := range specs {
		sc.addSpecLocked(sp)
	}
	return nil
}

// RemoveJob deregisters a job (e.g. cancelled).
func (sc *Scheduler) RemoveJob(id string) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if _, ok := sc.jobs[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	sc.removeLocked(id)
	sc.needSolve = true
	return nil
}

func (sc *Scheduler) removeLocked(id string) {
	delete(sc.jobs, id)
	delete(sc.shares, id)
	delete(sc.jobQueue, id)
	delete(sc.dirty, id) // removal is visible to the job-set diff itself
	if i, ok := sc.orderIdx[id]; ok {
		sc.order[i] = ""
		sc.holes++
		delete(sc.orderIdx, id)
	}
	if sc.holes > 32 && sc.holes*2 > len(sc.order) {
		sc.compactLocked()
	}
}

// compactLocked squeezes tombstones out of the insertion order. Relative
// order of live jobs is preserved, so instances stay deterministic.
func (sc *Scheduler) compactLocked() {
	live := sc.order[:0]
	for _, id := range sc.order {
		if id == "" {
			continue
		}
		sc.orderIdx[id] = len(live)
		live = append(live, id)
	}
	sc.order = live
	sc.holes = 0
}

// ReportProgress subtracts completed work per site. The allocation is
// re-solved only when the demand topology changes — a site's work running
// out, or the whole job completing — so steady progress does not churn
// the allocation (hysteresis). It reports whether the job completed.
func (sc *Scheduler) ReportProgress(id string, done []float64) (completed bool, err error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	j, ok := sc.jobs[id]
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	if err := validateProgress(done, sc.NumSites()); err != nil {
		return false, err
	}
	return sc.progressLocked(id, j, done), nil
}

// validateProgress shape- and sign-checks one progress row.
func validateProgress(done []float64, sites int) error {
	if len(done) != sites {
		return fmt.Errorf("scheduler: progress has %d entries for %d sites",
			len(done), sites)
	}
	for s, d := range done {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("scheduler: invalid progress %g at site %d", d, s)
		}
	}
	return nil
}

// progressLocked applies one validated progress row — the shared core of
// ReportProgress and ApplyMerged's phase-boundary reconciliation.
func (sc *Scheduler) progressLocked(id string, j *Job, done []float64) (completed bool) {
	anyLeft := false
	for s, d := range done {
		if j.Remaining[s] <= 0 {
			continue
		}
		j.Remaining[s] -= d
		j.instWork = nil // published views must see fresh remaining work
		// Exhaustion tolerance is relative to the work's own magnitude: a
		// job with ~1e12 outstanding work accumulates float residue far
		// above any absolute epsilon, and an absolute 1e-12 would leave
		// such sites demanding forever.
		if j.Remaining[s] <= 1e-12*math.Max(1, j.Remaining[s]+d) {
			j.Remaining[s] = 0
			j.Demand[s] = 0 // site exhausted: topology change
			j.instDemand = nil
			sc.markDirtyLocked(id)
		}
		if j.Remaining[s] > 0 {
			anyLeft = true
		}
	}
	if !anyLeft {
		sc.removeLocked(id)
		sc.stats.Completed++
		sc.needSolve = true
		return true
	}
	return false
}

// UpdateWeight changes a job's share weight at runtime (e.g. a priority
// bump). Weight <= 0 resets to 1.
func (sc *Scheduler) UpdateWeight(id string, weight float64) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	j, ok := sc.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	sc.setWeightLocked(id, j, weight)
	return nil
}

// setWeightLocked applies one weight update — the shared core of
// UpdateWeight and ApplyMerged's phase-boundary reconciliation.
func (sc *Scheduler) setWeightLocked(id string, j *Job, weight float64) {
	if weight <= 0 {
		weight = 1
	}
	if j.Weight != weight {
		j.Weight = weight
		sc.markDirtyLocked(id)
	}
}

// SetExternalWeight installs the share weight held by jobs outside this
// controller — the cluster router's Enhanced-AMF weight-sum broadcast
// (core.Instance.ExternalWeight). A change re-floors every job, so it
// forces a re-solve; setting the current value bit-exactly is a no-op.
func (sc *Scheduler) SetExternalWeight(w float64) error {
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("scheduler: invalid external weight %g", w)
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if math.Float64bits(sc.externalWeight) != math.Float64bits(w) {
		sc.externalWeight = w
		sc.needSolve = true
	}
	return nil
}

// validateApproxConfig rejects epsilon/threshold values the solver would
// silently misbehave on: negative, NaN or infinite epsilon, negative
// threshold.
func validateApproxConfig(eps float64, threshold int) error {
	if eps < 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return fmt.Errorf("scheduler: invalid approx epsilon %g", eps)
	}
	if threshold < 0 {
		return fmt.Errorf("scheduler: invalid approx threshold %d", threshold)
	}
	return nil
}

// SetApproxConfig installs the approximate-path knobs at runtime. Epsilon
// is the per-job error budget as a fraction of the instance scale;
// threshold is the component size (jobs+edges) above which the fast path
// engages; both must be positive for it to trigger, and (0, 0) restores
// fully exact solving. A change drops all carried incremental state — a
// component solved under one epsilon must not be spliced under another —
// and forces a re-solve; setting the current values is a no-op.
func (sc *Scheduler) SetApproxConfig(eps float64, threshold int) error {
	if err := validateApproxConfig(eps, threshold); err != nil {
		return err
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.setApproxLocked(eps, threshold)
	return nil
}

func (sc *Scheduler) setApproxLocked(eps float64, threshold int) {
	cur := sc.cfg.Solver
	if math.Float64bits(cur.ApproxEpsilon) == math.Float64bits(eps) && cur.ApproxThreshold == threshold {
		return
	}
	cur.ApproxEpsilon = eps
	cur.ApproxThreshold = threshold
	sc.cfg.ApproxEpsilon = eps
	sc.cfg.ApproxThreshold = threshold
	if sc.inc != nil {
		// Carried component results splice without re-fingerprinting, so a
		// routing-knob change must drop them wholesale.
		sc.inc.Reset()
	}
	sc.resetHotLocked() // the dropped components' telemetry went with them
	sc.needSolve = true
}

// ApproxConfig reports the currently installed approximate-path knobs.
func (sc *Scheduler) ApproxConfig() (eps float64, threshold int) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.cfg.Solver.ApproxEpsilon, sc.cfg.Solver.ApproxThreshold
}

// ExternalWeight reports the currently installed external share weight.
func (sc *Scheduler) ExternalWeight() float64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.externalWeight
}

// WeightSum reports the total share weight of the live job set (without
// the external weight) — what the router reconciles across shards.
func (sc *Scheduler) WeightSum() float64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	var sum float64
	for _, j := range sc.jobs {
		sum += j.Weight
	}
	return sum
}

// Shares returns the current per-site share vector of one job, re-solving
// if the job set changed since the last query. The caller owns the
// returned slice.
func (sc *Scheduler) Shares(id string) ([]float64, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if _, ok := sc.jobs[id]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	if err := sc.solveLocked(); err != nil {
		return nil, err
	}
	return append([]float64(nil), sc.shares[id]...), nil
}

// Allocation returns all current shares keyed by job ID. The caller owns
// the returned map and slices.
func (sc *Scheduler) Allocation() (map[string][]float64, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if err := sc.solveLocked(); err != nil {
		return nil, err
	}
	out := make(map[string][]float64, len(sc.shares))
	for id, sh := range sc.shares {
		out[id] = append([]float64(nil), sh...)
	}
	return out, nil
}

// Aggregate returns one job's aggregate allocation across sites.
func (sc *Scheduler) Aggregate(id string) (float64, error) {
	sh, err := sc.Shares(id)
	if err != nil {
		return 0, err
	}
	var t float64
	for _, v := range sh {
		t += v
	}
	return t, nil
}

// SetOnSolve installs (or replaces) the post-solve instrumentation hook;
// see Config.OnSolve for the contract. nil uninstalls it.
func (sc *Scheduler) SetOnSolve(fn func(time.Duration)) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.cfg.OnSolve = fn
}

// SetOnStage installs (or replaces) the per-stage solver instrumentation
// hook on the underlying core solver: it receives one core.StageEvent per
// solve stage (validate, partition, solve, merge, plus per-component
// detail events; see core.StageEvent for the contract). The hook fires on
// whichever goroutine triggered the solve and may run with the
// controller's mutex held, so it must be cheap and must not call back into
// the Scheduler. nil uninstalls it.
func (sc *Scheduler) SetOnStage(fn func(core.StageEvent)) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.cfg.Solver.OnStage = fn
}

// Stats returns activity counters.
func (sc *Scheduler) Stats() Stats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	st := sc.stats
	st.Jobs = len(sc.jobs)
	return st
}

// Instance materializes the current job set as a core.Instance (insertion
// order), for inspection or offline analysis. The caller owns the copy.
func (sc *Scheduler) Instance() *core.Instance {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.viewLocked().Clone()
}

// viewLocked assembles the current job set as a read-only instance view.
// The instance shell (slices of rows, names, weights) is fresh per call,
// but the capacity and per-job demand/work rows are shared immutable
// snapshots: they are replaced — never written in place — when the
// underlying job mutates. Solvers only read instances, so views are safe
// to hand out and cheap to build (no per-row copying).
func (sc *Scheduler) viewLocked() *core.Instance {
	live := len(sc.order) - sc.holes
	in := &core.Instance{
		SiteCapacity:   sc.capRow,
		Demand:         make([][]float64, 0, live),
		Work:           make([][]float64, 0, live),
		Weight:         make([]float64, 0, live),
		JobName:        make([]string, 0, live),
		ExternalWeight: sc.externalWeight,
	}
	for _, id := range sc.order {
		if id == "" {
			continue
		}
		j := sc.jobs[id]
		if j.instDemand == nil {
			j.instDemand = append([]float64(nil), j.Demand...)
		}
		if j.instWork == nil {
			j.instWork = append([]float64(nil), j.Remaining...)
		}
		in.Demand = append(in.Demand, j.instDemand)
		in.Work = append(in.Work, j.instWork)
		in.Weight = append(in.Weight, j.Weight)
		in.JobName = append(in.JobName, id)
	}
	return in
}

func (sc *Scheduler) solveLocked() error {
	if !sc.needSolve {
		sc.stats.Skipped++
		return nil
	}
	if len(sc.jobs) == 0 && sc.inc == nil {
		sc.shares = map[string][]float64{}
		sc.needSolve = false
		return nil
	}
	start := time.Now()
	in := sc.viewLocked()
	incremental := false
	var pst policy.Stats
	var err error
	switch {
	case sc.queuedLocked():
		err = sc.solveHierarchicalLocked(in)
		// The hierarchical path bypasses the incremental solver, so the
		// classifier gets no telemetry: drop the hot set rather than let the
		// engine buffer against a stale one.
		sc.resetHotLocked()
	case sc.inc != nil:
		incremental = true
		err = sc.solveIncrementalLocked(in)
	default:
		pst, err = sc.solveFlatLocked(in)
	}
	if err != nil {
		return err
	}
	d := time.Since(start)
	sc.stats.LastSolve = d
	sc.stats.TotalSolveTime += d
	sc.updateSolveTelemetryLocked(incremental, pst)
	if sc.cfg.OnSolve != nil {
		sc.cfg.OnSolve(d)
	}
	return nil
}

// updateSolveTelemetryLocked folds the solver's decomposition record into
// Stats. The core solver's Seq counter distinguishes "the solver ran and
// recorded fresh numbers" from "this solve never entered the core solver"
// (PS-MMF, empty job set): in the latter case the previous solve's
// numbers are stale and must be reset, not carried. Policies that manage
// their own decomposition and result cache (DRF) bypass the core solver
// entirely and report Native policy.Stats instead, which take the same
// Stats slots so /v1/stats and the metrics read uniformly.
func (sc *Scheduler) updateSolveTelemetryLocked(incremental bool, pst policy.Stats) {
	ss := sc.cfg.Solver.LastStats()
	ran := ss.Seq != sc.lastSeq
	sc.lastSeq = ss.Seq
	if !ran {
		sc.stats.LastComponents = 0
		sc.stats.LastLargestComponent = 0
		sc.stats.LastSpeedup = 0
		sc.stats.LastReused = 0
		sc.stats.LastResolved = 0
		sc.stats.LastApproxComponents = 0
		sc.stats.LastApproxErrorBound = 0
		if pst.Native {
			sc.stats.LastComponents = pst.Components
			sc.stats.LastLargestComponent = pst.Largest
			sc.stats.LastReused = pst.Reused
			sc.stats.LastResolved = pst.Resolved
			sc.stats.CacheHits = pst.CacheHits
			sc.stats.CacheMisses = pst.CacheMisses
		}
		return
	}
	sc.stats.LastComponents = ss.Components
	sc.stats.LastLargestComponent = ss.LargestComponent
	sc.stats.LastSpeedup = ss.Speedup
	sc.stats.LastApproxComponents = ss.ApproxComponents
	sc.stats.LastApproxErrorBound = ss.ApproxErrorBound
	if incremental {
		ist := sc.inc.LastStats()
		sc.stats.LastReused = ist.Reused + ist.CacheHits
		sc.stats.LastResolved = ist.Solved
		sc.stats.CacheHits = ist.TotalCacheHits
		sc.stats.CacheMisses = ist.TotalCacheMisses
		sc.stats.GlobalInvalidations = ist.GlobalInvalidations
	} else {
		// From-scratch solve: every component it saw was re-solved.
		sc.stats.LastReused = 0
		sc.stats.LastResolved = ss.Components
	}
}

// solveIncrementalLocked re-solves only the components touched by the
// accumulated dirty set. It consumes the dirty set on success: fallback
// solves (hierarchical) leave it intact so the incremental solver sees
// every change that happened while another path was active.
func (sc *Scheduler) solveIncrementalLocked(in *core.Instance) error {
	alloc, err := sc.inc.Solve(in, sc.dirty)
	if err != nil {
		return fmt.Errorf("scheduler: %w", err)
	}
	sc.stats.Solves++
	sc.installSharesLocked(in, alloc.Share)
	clear(sc.dirty)
	sc.needSolve = false
	sc.recordHotLocked()
	return nil
}

func (sc *Scheduler) solveFlatLocked(in *core.Instance) (policy.Stats, error) {
	alloc, pst, err := sc.cfg.Policy.Allocate(context.Background(),
		&policy.View{Inst: in, Solver: sc.cfg.Solver})
	if err != nil {
		return pst, fmt.Errorf("scheduler: %w", err)
	}
	sc.stats.Solves++
	sc.installSharesLocked(in, alloc.Share)
	// The flat path only runs when no incremental solver exists (see
	// solveLocked), so nothing will ever consume the accumulated dirty
	// set: clear it. Leaving it to grow was the PR 3 behavior — harmless
	// then, but a runtime policy switch now re-marks every live job
	// itself (SetPolicy), so an unconsumed dirty set is pure leak.
	clear(sc.dirty)
	sc.needSolve = false
	sc.resetHotLocked() // no incremental telemetry: nothing can be hot
	return pst, nil
}

// ValidateProgress shape- and sign-checks one progress row without
// touching any job — the serving engine validates commutative mutations
// before buffering them, since a buffered mutation is acknowledged long
// before it is applied.
func ValidateProgress(done []float64, sites int) error {
	return validateProgress(done, sites)
}

// installSharesLocked replaces the share map with the solve's rows. Rows
// are installed by reference and treated as immutable from here on: the
// solver allocated them fresh (or, on the incremental path, they are the
// solver's cached immutable rows), and nothing writes them in place.
func (sc *Scheduler) installSharesLocked(in *core.Instance, share [][]float64) {
	sc.shares = make(map[string][]float64, len(in.JobName))
	for i, id := range in.JobName {
		sc.shares[id] = share[i]
	}
}

// Resolve re-solves if the job set changed and returns a self-consistent
// view under one lock acquisition: the instance the shares were computed
// against (job order = Instance.JobName) and the per-job share vectors.
//
// Both are read-only views: the map and instance shell are fresh, but the
// rows are immutable snapshots shared with the controller and with other
// Resolve results. Callers (the serving engine publishes them as
// immutable snapshots) must not mutate them; they remain valid after
// later mutations because mutations replace rows instead of writing them
// in place.
func (sc *Scheduler) Resolve() (*core.Instance, map[string][]float64, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if err := sc.solveLocked(); err != nil {
		return nil, nil, err
	}
	out := make(map[string][]float64, len(sc.shares))
	for id, sh := range sc.shares {
		out[id] = sh
	}
	return sc.viewLocked(), out, nil
}

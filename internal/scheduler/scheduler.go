// Package scheduler provides a long-running allocation controller on top
// of the AMF allocators: the integration surface a cluster manager (YARN-,
// Mesos- or Kubernetes-style) would embed. It maintains a live job set,
// re-solves the fair allocation when the set or the demand topology
// changes, applies hysteresis so progress reports do not cause allocation
// churn, and exposes the current shares for actuation.
//
// The controller is deliberately synchronous and deterministic: mutations
// mark the allocation dirty, and Allocation()/Shares() lazily re-solve.
// All methods are safe for concurrent use.
package scheduler

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// Sentinel errors for callers that need to distinguish failure kinds
// (e.g. to map them onto HTTP status codes).
var (
	// ErrUnknownJob is returned for operations on a job ID the controller
	// does not hold.
	ErrUnknownJob = errors.New("scheduler: unknown job")
	// ErrDuplicateJob is returned when adding an ID that already exists.
	ErrDuplicateJob = errors.New("scheduler: job already exists")
)

// Config parameterizes a Scheduler.
type Config struct {
	// SiteCapacity is the per-site resource capacity (required).
	SiteCapacity []float64
	// Policy selects the allocation discipline (default PolicyAMF).
	Policy sim.Policy
	// Solver overrides the default core solver.
	Solver *core.Solver
	// OnSolve, when set, is invoked after every allocator run with its
	// wall-clock duration — the instrumentation hook internal/serve uses to
	// feed solve-latency histograms. It is called with the controller's
	// mutex held and must not call back into the Scheduler.
	OnSolve func(time.Duration)
}

// Job is the controller's view of one running job. The JSON form is the
// snapshot wire format.
type Job struct {
	ID     string  `json:"id"`
	Weight float64 `json:"weight"`
	// Queue is the named queue the job belongs to ("" = default queue).
	Queue string `json:"queue,omitempty"`
	// Demand[s] is the job's maximum useful parallelism at site s.
	Demand []float64 `json:"demand"`
	// Remaining[s] is the outstanding work at site s; when it reaches zero
	// the site is dropped from the job's demand.
	Remaining []float64 `json:"remaining"`
}

// Stats reports controller activity counters. It is the single source of
// truth for solve accounting: /v1/stats and the internal/obs metrics both
// report these numbers.
type Stats struct {
	// Solves counts allocator invocations.
	Solves int
	// Skipped counts queries served from the cached allocation.
	Skipped int
	// Jobs is the current number of active jobs.
	Jobs int
	// Completed counts jobs that finished (all remaining work zero).
	Completed int
	// LastSolve is the wall-clock duration of the most recent allocator
	// run (zero if the controller has never solved).
	LastSolve time.Duration
	// TotalSolveTime accumulates wall-clock time spent in the allocator.
	TotalSolveTime time.Duration
	// LastComponents is the number of connected components of the demand
	// graph the most recent solve decomposed into (see core.SolveStats);
	// zero when the policy never ran the core solver.
	LastComponents int
	// LastLargestComponent is the job count of the largest component of
	// the most recent solve.
	LastLargestComponent int
	// LastSpeedup is the parallel speedup of the most recent solve
	// (sequential component time / wall time; 1 for monolithic solves).
	LastSpeedup float64
}

// Scheduler is the live allocation controller.
type Scheduler struct {
	mu          sync.Mutex
	cfg         Config
	order       []string // insertion order, for deterministic instances
	jobs        map[string]*Job
	shares      map[string][]float64
	dirty       bool
	stats       Stats
	queueWeight map[string]float64 // declared queues (see queues.go)
	jobQueue    map[string]string  // job -> queue ("" = default)
}

// New returns an empty controller.
func New(cfg Config) (*Scheduler, error) {
	if len(cfg.SiteCapacity) == 0 {
		return nil, fmt.Errorf("scheduler: no sites")
	}
	for s, c := range cfg.SiteCapacity {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("scheduler: invalid capacity %g at site %d", c, s)
		}
	}
	if cfg.Solver == nil {
		cfg.Solver = &core.Solver{SkipJCTRefine: true}
	}
	return &Scheduler{
		cfg:    cfg,
		jobs:   make(map[string]*Job),
		shares: make(map[string][]float64),
	}, nil
}

// NumSites reports the number of sites the controller manages.
func (sc *Scheduler) NumSites() int { return len(sc.cfg.SiteCapacity) }

// AddJob registers a job. work may be nil, meaning work == demand.
// Weight <= 0 defaults to 1.
func (sc *Scheduler) AddJob(id string, weight float64, demand, work []float64) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if _, ok := sc.jobs[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateJob, id)
	}
	if len(demand) != sc.NumSites() {
		return fmt.Errorf("scheduler: job %q has %d demand entries for %d sites",
			id, len(demand), sc.NumSites())
	}
	if work != nil && len(work) != sc.NumSites() {
		return fmt.Errorf("scheduler: job %q has %d work entries for %d sites",
			id, len(work), sc.NumSites())
	}
	for s, d := range demand {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("scheduler: job %q invalid demand %g at site %d", id, d, s)
		}
	}
	if weight <= 0 {
		weight = 1
	}
	j := &Job{
		ID:     id,
		Weight: weight,
		Demand: append([]float64(nil), demand...),
	}
	if work != nil {
		j.Remaining = append([]float64(nil), work...)
	} else {
		j.Remaining = append([]float64(nil), demand...)
	}
	sc.jobs[id] = j
	sc.order = append(sc.order, id)
	sc.dirty = true
	return nil
}

// RemoveJob deregisters a job (e.g. cancelled).
func (sc *Scheduler) RemoveJob(id string) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if _, ok := sc.jobs[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	sc.removeLocked(id)
	sc.dirty = true
	return nil
}

func (sc *Scheduler) removeLocked(id string) {
	delete(sc.jobs, id)
	delete(sc.shares, id)
	delete(sc.jobQueue, id)
	for i, o := range sc.order {
		if o == id {
			sc.order = append(sc.order[:i], sc.order[i+1:]...)
			break
		}
	}
}

// ReportProgress subtracts completed work per site. The allocation is
// re-solved only when the demand topology changes — a site's work running
// out, or the whole job completing — so steady progress does not churn
// the allocation (hysteresis). It reports whether the job completed.
func (sc *Scheduler) ReportProgress(id string, done []float64) (completed bool, err error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	j, ok := sc.jobs[id]
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	if len(done) != sc.NumSites() {
		return false, fmt.Errorf("scheduler: progress has %d entries for %d sites",
			len(done), sc.NumSites())
	}
	const tol = 1e-12
	anyLeft := false
	for s, d := range done {
		if d < 0 {
			return false, fmt.Errorf("scheduler: negative progress %g at site %d", d, s)
		}
		if j.Remaining[s] <= 0 {
			continue
		}
		j.Remaining[s] -= d
		if j.Remaining[s] <= tol {
			j.Remaining[s] = 0
			j.Demand[s] = 0 // site exhausted: topology change
			sc.dirty = true
		}
		if j.Remaining[s] > 0 {
			anyLeft = true
		}
	}
	if !anyLeft {
		sc.removeLocked(id)
		sc.stats.Completed++
		sc.dirty = true
		return true, nil
	}
	return false, nil
}

// UpdateWeight changes a job's share weight at runtime (e.g. a priority
// bump). Weight <= 0 resets to 1.
func (sc *Scheduler) UpdateWeight(id string, weight float64) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	j, ok := sc.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	if weight <= 0 {
		weight = 1
	}
	if j.Weight != weight {
		j.Weight = weight
		sc.dirty = true
	}
	return nil
}

// Shares returns the current per-site share vector of one job, re-solving
// if the job set changed since the last query.
func (sc *Scheduler) Shares(id string) ([]float64, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if _, ok := sc.jobs[id]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	if err := sc.solveLocked(); err != nil {
		return nil, err
	}
	return append([]float64(nil), sc.shares[id]...), nil
}

// Allocation returns all current shares keyed by job ID.
func (sc *Scheduler) Allocation() (map[string][]float64, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if err := sc.solveLocked(); err != nil {
		return nil, err
	}
	out := make(map[string][]float64, len(sc.shares))
	for id, sh := range sc.shares {
		out[id] = append([]float64(nil), sh...)
	}
	return out, nil
}

// Aggregate returns one job's aggregate allocation across sites.
func (sc *Scheduler) Aggregate(id string) (float64, error) {
	sh, err := sc.Shares(id)
	if err != nil {
		return 0, err
	}
	var t float64
	for _, v := range sh {
		t += v
	}
	return t, nil
}

// SetOnSolve installs (or replaces) the post-solve instrumentation hook;
// see Config.OnSolve for the contract. nil uninstalls it.
func (sc *Scheduler) SetOnSolve(fn func(time.Duration)) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.cfg.OnSolve = fn
}

// Stats returns activity counters.
func (sc *Scheduler) Stats() Stats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	st := sc.stats
	st.Jobs = len(sc.jobs)
	return st
}

// Instance materializes the current job set as a core.Instance (insertion
// order), for inspection or offline analysis.
func (sc *Scheduler) Instance() *core.Instance {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.instanceLocked()
}

func (sc *Scheduler) instanceLocked() *core.Instance {
	in := &core.Instance{
		SiteCapacity: append([]float64(nil), sc.cfg.SiteCapacity...),
		Demand:       make([][]float64, len(sc.order)),
		Work:         make([][]float64, len(sc.order)),
		Weight:       make([]float64, len(sc.order)),
		JobName:      append([]string(nil), sc.order...),
	}
	for i, id := range sc.order {
		j := sc.jobs[id]
		in.Demand[i] = append([]float64(nil), j.Demand...)
		in.Work[i] = append([]float64(nil), j.Remaining...)
		in.Weight[i] = j.Weight
	}
	return in
}

func (sc *Scheduler) solveLocked() error {
	if !sc.dirty {
		sc.stats.Skipped++
		return nil
	}
	if len(sc.order) == 0 {
		sc.shares = map[string][]float64{}
		sc.dirty = false
		return nil
	}
	start := time.Now()
	in := sc.instanceLocked()
	var err error
	if sc.queuedLocked() {
		err = sc.solveHierarchicalLocked(in)
	} else {
		err = sc.solveFlatLocked(in)
	}
	if err != nil {
		return err
	}
	d := time.Since(start)
	sc.stats.LastSolve = d
	sc.stats.TotalSolveTime += d
	if ss := sc.cfg.Solver.LastStats(); ss.Components > 0 {
		sc.stats.LastComponents = ss.Components
		sc.stats.LastLargestComponent = ss.LargestComponent
		sc.stats.LastSpeedup = ss.Speedup
	}
	if sc.cfg.OnSolve != nil {
		sc.cfg.OnSolve(d)
	}
	return nil
}

func (sc *Scheduler) solveFlatLocked(in *core.Instance) error {
	alloc, err := sc.cfg.Policy.Allocate(sc.cfg.Solver, in)
	if err != nil {
		return fmt.Errorf("scheduler: %w", err)
	}
	sc.stats.Solves++
	sc.shares = make(map[string][]float64, len(sc.order))
	for i, id := range sc.order {
		sc.shares[id] = append([]float64(nil), alloc.Share[i]...)
	}
	sc.dirty = false
	return nil
}

// Resolve re-solves if the job set changed and returns a self-consistent
// view under one lock acquisition: the instance the shares were computed
// against (job order = Instance.JobName) and the per-job share vectors.
// Both are fresh copies the caller owns — the serving engine publishes
// them as an immutable snapshot.
func (sc *Scheduler) Resolve() (*core.Instance, map[string][]float64, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if err := sc.solveLocked(); err != nil {
		return nil, nil, err
	}
	out := make(map[string][]float64, len(sc.shares))
	for id, sh := range sc.shares {
		out[id] = append([]float64(nil), sh...)
	}
	return sc.instanceLocked(), out, nil
}

package scheduler

// Runtime-tuning config as one coherent document. Every knob that used to
// have a bespoke setter (policy, approximate-solver routing, and now the
// phase-reconciliation knobs) is readable and patchable through
// RuntimeConfig/ConfigPatch — the scheduler-level substrate of the HTTP
// API's GET/PATCH /v1/config. A patch is validated in full before
// anything is applied, so a rejected patch leaves the controller
// untouched.

import (
	"fmt"

	"repro/internal/policy"
)

// RuntimeConfig is the complete runtime-tuning state: the GET /v1/config
// document minus the immutable site capacities (which the API layer adds
// from its own boot config).
type RuntimeConfig struct {
	Policy          string      `json:"policy"`
	ApproxEpsilon   float64     `json:"approx_epsilon"`
	ApproxThreshold int         `json:"approx_threshold"`
	Phase           PhaseConfig `json:"phase"`
}

// RuntimeConfig reports the current runtime-tuning state.
func (sc *Scheduler) RuntimeConfig() RuntimeConfig {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return RuntimeConfig{
		Policy:          sc.cfg.Policy.Name(),
		ApproxEpsilon:   sc.cfg.Solver.ApproxEpsilon,
		ApproxThreshold: sc.cfg.Solver.ApproxThreshold,
		Phase:           sc.cfg.Phase,
	}
}

// ConfigPatch is a partial runtime-tuning update: nil fields keep their
// current values. It is also the WAL payload of OpSetConfig, so replay
// re-applies exactly what was patched.
type ConfigPatch struct {
	Policy          *string  `json:"policy,omitempty"`
	ApproxEpsilon   *float64 `json:"approx_epsilon,omitempty"`
	ApproxThreshold *int     `json:"approx_threshold,omitempty"`
	HotThreshold    *float64 `json:"hot_threshold,omitempty"`
	MaxBatches      *int     `json:"max_batches,omitempty"`
	MaxIntervalMS   *int     `json:"max_interval_ms,omitempty"`
	Window          *int     `json:"window,omitempty"`
}

// Empty reports whether the patch changes nothing.
func (p ConfigPatch) Empty() bool {
	return p.Policy == nil && p.ApproxEpsilon == nil && p.ApproxThreshold == nil &&
		p.HotThreshold == nil && p.MaxBatches == nil && p.MaxIntervalMS == nil && p.Window == nil
}

// resolve folds the patch over the current state and validates the
// result, returning the policy to install (nil = unchanged).
func (sc *Scheduler) resolvePatchLocked(p ConfigPatch) (pol policy.Policy, eps float64, threshold int, ph PhaseConfig, err error) {
	eps, threshold = sc.cfg.Solver.ApproxEpsilon, sc.cfg.Solver.ApproxThreshold
	if p.ApproxEpsilon != nil {
		eps = *p.ApproxEpsilon
	}
	if p.ApproxThreshold != nil {
		threshold = *p.ApproxThreshold
	}
	if err = validateApproxConfig(eps, threshold); err != nil {
		return nil, 0, 0, PhaseConfig{}, err
	}
	ph = sc.cfg.Phase
	if p.HotThreshold != nil {
		ph.HotThreshold = *p.HotThreshold
	}
	if p.MaxBatches != nil {
		ph.MaxBatches = *p.MaxBatches
	}
	if p.MaxIntervalMS != nil {
		ph.MaxIntervalMS = *p.MaxIntervalMS
	}
	if p.Window != nil {
		ph.Window = *p.Window
	}
	if err = ph.validate(); err != nil {
		return nil, 0, 0, PhaseConfig{}, err
	}
	if p.Policy != nil {
		pol, err = policy.ForName(*p.Policy)
		if err != nil {
			return nil, 0, 0, PhaseConfig{}, err
		}
	}
	return pol, eps, threshold, ph, nil
}

// ApplyConfigPatch validates the whole patch against the current state
// and applies it atomically under one lock acquisition. Unchanged fields
// are no-ops (a policy patch naming the active policy does not drop
// incremental state).
func (sc *Scheduler) ApplyConfigPatch(p ConfigPatch) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	pol, eps, threshold, ph, err := sc.resolvePatchLocked(p)
	if err != nil {
		return err
	}
	if pol != nil {
		sc.setPolicyLocked(pol)
	}
	sc.setApproxLocked(eps, threshold)
	sc.setPhaseLocked(ph)
	return nil
}

// ValidateConfigPatch checks the patch against the current state without
// applying anything — the serving engine's fast-fail before enqueueing
// the exclusive config commit.
func (sc *Scheduler) ValidateConfigPatch(p ConfigPatch) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	_, _, _, _, err := sc.resolvePatchLocked(p)
	return err
}

// String renders the patch compactly for logs.
func (p ConfigPatch) String() string {
	out := "{"
	add := func(f string, v any) {
		if len(out) > 1 {
			out += " "
		}
		out += fmt.Sprintf("%s=%v", f, v)
	}
	if p.Policy != nil {
		add("policy", *p.Policy)
	}
	if p.ApproxEpsilon != nil {
		add("approx_epsilon", *p.ApproxEpsilon)
	}
	if p.ApproxThreshold != nil {
		add("approx_threshold", *p.ApproxThreshold)
	}
	if p.HotThreshold != nil {
		add("hot_threshold", *p.HotThreshold)
	}
	if p.MaxBatches != nil {
		add("max_batches", *p.MaxBatches)
	}
	if p.MaxIntervalMS != nil {
		add("max_interval_ms", *p.MaxIntervalMS)
	}
	if p.Window != nil {
		add("window", *p.Window)
	}
	return out + "}"
}

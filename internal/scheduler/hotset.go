package scheduler

// Hot/cold component classification for Doppel-style phase reconciliation
// (Narula et al., OSDI 2014, via ddtxn). Under zipf-skewed churn a few
// giant popular components are dirtied by almost every commit — exactly
// the components whose solves dominate commit latency — so the
// incremental solver's cache degenerates to a miss per commit. The
// classifier watches the incremental solver's per-component telemetry
// (mutation-hit counts over a sliding window of solves, plus a solve-time
// EWMA) and marks the top components hot. The serving engine then
// accumulates commutative mutations (ReportProgress, UpdateWeight)
// targeting hot components in delta buffers instead of dirtying them, and
// reconciles each hot component's deltas into one merged mutation — and
// one solve — per phase boundary. Cold components keep the exact ordered
// incremental path.
//
// The scheduler owns only the knobs (PhaseConfig), the classifier, and
// the merged-mutation application (ApplyMerged); buffering and phase
// boundaries live in internal/serve's committer, which is single-threaded
// — the degenerate single-mutator form of Doppel's split per-core
// buffers, valid precisely because the buffered operations commute.

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
)

// PhaseConfig tunes phase reconciliation. The zero value disables it.
// The JSON form is both the /v1/config wire shape and the snapshot
// persistence shape.
type PhaseConfig struct {
	// HotThreshold is the fraction of recent solves that must have been
	// dirtied by a component for it to classify hot, in (0, 1]. Zero
	// disables phase reconciliation entirely.
	HotThreshold float64 `json:"hot_threshold,omitempty"`
	// MaxBatches is the phase length in commit batches: the committer
	// reconciles all buffered deltas after this many batches carrying
	// buffered mutations (default 8).
	MaxBatches int `json:"max_batches,omitempty"`
	// MaxIntervalMS bounds the wall-clock age of a buffered delta: a
	// phase boundary fires this many milliseconds after the first
	// unreconciled delta even if the batch quota has not been reached
	// (default 10ms). Whichever of MaxBatches/MaxIntervalMS trips first
	// ends the phase.
	MaxIntervalMS int `json:"max_interval_ms,omitempty"`
	// Window is the classifier's sliding window length in solves
	// (default 32).
	Window int `json:"window,omitempty"`
}

// Enabled reports whether phase reconciliation is armed at all.
func (p PhaseConfig) Enabled() bool { return p.HotThreshold > 0 }

// EffectiveMaxBatches, EffectiveMaxInterval and EffectiveWindow apply the
// documented defaults to unset knobs.
func (p PhaseConfig) EffectiveMaxBatches() int {
	if p.MaxBatches > 0 {
		return p.MaxBatches
	}
	return 8
}

func (p PhaseConfig) EffectiveMaxInterval() time.Duration {
	if p.MaxIntervalMS > 0 {
		return time.Duration(p.MaxIntervalMS) * time.Millisecond
	}
	return 10 * time.Millisecond
}

func (p PhaseConfig) EffectiveWindow() int {
	if p.Window > 0 {
		return p.Window
	}
	return 32
}

// Validate checks the knobs against their documented ranges — the same
// check scheduler.New and SetPhaseConfig run; exported so flag parsers
// can fail fast before constructing anything.
func (p PhaseConfig) Validate() error { return p.validate() }

func (p PhaseConfig) validate() error {
	if math.IsNaN(p.HotThreshold) || math.IsInf(p.HotThreshold, 0) || p.HotThreshold < 0 || p.HotThreshold > 1 {
		return fmt.Errorf("scheduler: hot threshold must be a fraction in [0, 1], got %g", p.HotThreshold)
	}
	if p.MaxBatches < 0 {
		return fmt.Errorf("scheduler: max batches must be non-negative, got %d", p.MaxBatches)
	}
	if p.MaxIntervalMS < 0 {
		return fmt.Errorf("scheduler: max interval must be non-negative, got %dms", p.MaxIntervalMS)
	}
	if p.Window < 0 {
		return fmt.Errorf("scheduler: classifier window must be non-negative, got %d", p.Window)
	}
	return nil
}

// SetPhaseConfig installs phase-reconciliation knobs at runtime. The
// scheduler side is inert — it only (re)arms the classifier; the serving
// engine re-reads the config on its committer loop and adjusts buffering.
func (sc *Scheduler) SetPhaseConfig(p PhaseConfig) error {
	if err := p.validate(); err != nil {
		return err
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.setPhaseLocked(p)
	return nil
}

func (sc *Scheduler) setPhaseLocked(p PhaseConfig) {
	if sc.cfg.Phase == p {
		return
	}
	sc.cfg.Phase = p
	// Window or enablement changed: restart classification from scratch
	// rather than reinterpreting counts accumulated under the old window.
	sc.resetHotLocked()
}

// PhaseConfig reports the currently installed phase-reconciliation knobs.
func (sc *Scheduler) PhaseConfig() PhaseConfig {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.cfg.Phase
}

// PolicyCapabilities reports the active policy's declared capabilities —
// the serving engine gates delta buffering on Commutative.
func (sc *Scheduler) PolicyCapabilities() policy.Capabilities {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.cfg.Policy.Capabilities()
}

// HotSet is the classifier's immutable output: the jobs and sites owned
// by currently-hot components, keyed by the component's stable identity
// (its lexicographically smallest member job name). A new HotSet is built
// whenever classification changes; consumers must treat it as read-only.
// Nil means nothing is hot.
type HotSet struct {
	// Keys lists the hot component keys, sorted.
	Keys []string
	// Jobs maps a member job ID to its hot component's key.
	Jobs map[string]string
	// Sites maps a site index to the hot component that owns it.
	Sites map[int]string
	// EWMA is the per-component solve-time EWMA that contributed to the
	// classification (telemetry; exported via engine gauges).
	EWMA map[string]time.Duration
}

// Has reports whether the component key is hot in this snapshot. Safe on
// a nil receiver (nothing is hot).
func (hs *HotSet) Has(key string) bool {
	if hs == nil {
		return false
	}
	_, ok := hs.EWMA[key]
	return ok
}

// HotSet returns the current classification snapshot (nil when phase
// reconciliation is disabled or nothing classifies hot).
func (sc *Scheduler) HotSet() *HotSet {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.hotSet
}

// hotTracker accumulates per-component mutation hits over a sliding
// window of solves, plus a solve-time EWMA.
type hotTracker struct {
	window int
	ring   [][]string // per-solve touched component keys
	pos    int
	size   int // filled ring entries
	hits   map[string]int
	ewma   map[string]time.Duration
}

func newHotTracker(window int) *hotTracker {
	return &hotTracker{
		window: window,
		ring:   make([][]string, window),
		hits:   map[string]int{},
		ewma:   map[string]time.Duration{},
	}
}

// push records one solve's touched component keys, evicting the oldest
// window entry.
func (t *hotTracker) push(touched []string) {
	if t.size == t.window {
		for _, k := range t.ring[t.pos] {
			if t.hits[k]--; t.hits[k] <= 0 {
				delete(t.hits, k)
				delete(t.ewma, k) // fully cold: drop its EWMA too
			}
		}
	} else {
		t.size++
	}
	t.ring[t.pos] = touched
	t.pos = (t.pos + 1) % t.window
	for _, k := range touched {
		t.hits[k]++
	}
}

// observe folds one actual solve duration into the component's EWMA.
func (t *hotTracker) observe(key string, d time.Duration) {
	if prev, ok := t.ewma[key]; ok {
		t.ewma[key] = (4*prev + d) / 5
	} else {
		t.ewma[key] = d
	}
}

// resetHotLocked drops all classification state.
func (sc *Scheduler) resetHotLocked() {
	sc.hot = nil
	sc.hotSet = nil
}

// recordHotLocked runs after every incremental solve: it feeds the
// classifier with the solve's per-component telemetry and rebuilds the
// hot set when classification or hot membership changed.
func (sc *Scheduler) recordHotLocked() {
	ph := sc.cfg.Phase
	if !ph.Enabled() || sc.inc == nil || !sc.cfg.Policy.Capabilities().Commutative {
		sc.resetHotLocked()
		return
	}
	if sc.hot == nil || sc.hot.window != ph.EffectiveWindow() {
		sc.hot = newHotTracker(ph.EffectiveWindow())
		sc.hotSet = nil
	}
	t := sc.hot
	var touched []string
	sc.inc.VisitComponents(func(cs core.CompStat) {
		if cs.Touched {
			touched = append(touched, cs.Key)
		}
		if cs.Solved {
			t.observe(cs.Key, cs.LastSolve)
		}
	})
	t.push(touched)

	// Classify: hot iff the component was mutation-dirtied in at least
	// HotThreshold of the windowed solves.
	var hotKeys []string
	for k, n := range t.hits {
		if float64(n) >= ph.HotThreshold*float64(t.size) {
			hotKeys = append(hotKeys, k)
		}
	}
	if len(hotKeys) == 0 {
		sc.hotSet = nil
		return
	}
	sort.Strings(hotKeys)
	// Rebuild the snapshot. Membership of a hot component can only change
	// through a solve (every membership-changing mutation dirties it), so
	// rebuilding here — after each solve — is always fresh.
	hs := &HotSet{
		Keys:  hotKeys,
		Jobs:  map[string]string{},
		Sites: map[int]string{},
		EWMA:  make(map[string]time.Duration, len(hotKeys)),
	}
	want := make(map[string]bool, len(hotKeys))
	for _, k := range hotKeys {
		want[k] = true
		hs.EWMA[k] = t.ewma[k]
	}
	sc.inc.VisitComponents(func(cs core.CompStat) {
		if !want[cs.Key] {
			return
		}
		for _, id := range cs.Jobs {
			hs.Jobs[id] = cs.Key
		}
		for _, s := range cs.Sites {
			hs.Sites[s] = cs.Key
		}
	})
	sc.hotSet = hs
}

// JobLive reports whether the job currently exists — the serving engine's
// pre-buffer liveness check for commutative mutations.
func (sc *Scheduler) JobLive(id string) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	_, ok := sc.jobs[id]
	return ok
}

// RemainingCopy returns a copy of the job's outstanding work per site —
// the serving engine seeds its projected-completion tracking from it
// before buffering progress reports.
func (sc *Scheduler) RemainingCopy(id string) ([]float64, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	j, ok := sc.jobs[id]
	if !ok {
		return nil, false
	}
	return append([]float64(nil), j.Remaining...), true
}

// MergedDelta is the reconciled accumulation of the commutative mutations
// buffered against one hot component: summed progress rows and
// last-writer weights. Applying it is equivalent to applying the buffered
// mutations in their original order — progress subtraction is commutative
// and weight updates are last-write-wins.
type MergedDelta struct {
	// Progress maps job ID -> summed done vector.
	Progress map[string][]float64
	// Weights maps job ID -> final (last submitted) weight.
	Weights map[string]float64
}

// ApplyMerged applies one reconciled delta under a single lock
// acquisition: the phase boundary's "one merged mutation" per hot
// component. Jobs that disappeared since buffering are skipped (the
// engine forces a reconcile before any removal, so this is defensive).
// It returns the IDs of jobs the merged progress completed, sorted.
func (sc *Scheduler) ApplyMerged(d MergedDelta) (completed []string, err error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sites := sc.NumSites()
	for id, done := range d.Progress {
		if err := validateProgress(done, sites); err != nil {
			return nil, fmt.Errorf("merged progress for %q: %w", id, err)
		}
	}
	for id, w := range d.Weights {
		j, ok := sc.jobs[id]
		if !ok {
			continue
		}
		sc.setWeightLocked(id, j, w)
	}
	for id, done := range d.Progress {
		j, ok := sc.jobs[id]
		if !ok {
			continue
		}
		if sc.progressLocked(id, j, done) {
			completed = append(completed, id)
		}
	}
	sort.Strings(completed)
	return completed, nil
}

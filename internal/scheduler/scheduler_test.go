package scheduler

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
)

func newTestScheduler(t *testing.T, caps ...float64) *Scheduler {
	t.Helper()
	sc, err := New(Config{SiteCapacity: caps, Policy: policy.AMF})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func feq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no sites accepted")
	}
	if _, err := New(Config{SiteCapacity: []float64{-1}}); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestAddAndAllocate(t *testing.T) {
	sc := newTestScheduler(t, 1, 1)
	if err := sc.AddJob("flexible", 1, []float64{1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sc.AddJob("pinned", 1, []float64{1, 0}, nil); err != nil {
		t.Fatal(err)
	}
	agg, err := sc.Aggregate("pinned")
	if err != nil {
		t.Fatal(err)
	}
	if !feq(agg, 1) {
		t.Fatalf("pinned aggregate %g, want 1 (AMF should route flexible away)", agg)
	}
	sh, err := sc.Shares("flexible")
	if err != nil {
		t.Fatal(err)
	}
	if !feq(sh[1], 1) {
		t.Fatalf("flexible shares %v, want all at site 1", sh)
	}
}

func TestAddJobErrors(t *testing.T) {
	sc := newTestScheduler(t, 1)
	if err := sc.AddJob("a", 1, []float64{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sc.AddJob("a", 1, []float64{1}, nil); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if err := sc.AddJob("b", 1, []float64{1, 2}, nil); err == nil {
		t.Fatal("wrong-length demand accepted")
	}
	if err := sc.AddJob("c", 1, []float64{-1}, nil); err == nil {
		t.Fatal("negative demand accepted")
	}
	if err := sc.AddJob("d", 1, []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("wrong-length work accepted")
	}
}

func TestRemoveJobReallocates(t *testing.T) {
	sc := newTestScheduler(t, 2)
	_ = sc.AddJob("a", 1, []float64{2}, nil)
	_ = sc.AddJob("b", 1, []float64{2}, nil)
	agg, _ := sc.Aggregate("a")
	if !feq(agg, 1) {
		t.Fatalf("shared aggregate %g, want 1", agg)
	}
	if err := sc.RemoveJob("b"); err != nil {
		t.Fatal(err)
	}
	agg, _ = sc.Aggregate("a")
	if !feq(agg, 2) {
		t.Fatalf("after removal aggregate %g, want 2", agg)
	}
	if err := sc.RemoveJob("nope"); err == nil {
		t.Fatal("unknown removal accepted")
	}
}

func TestProgressHysteresis(t *testing.T) {
	sc := newTestScheduler(t, 4)
	_ = sc.AddJob("a", 1, []float64{4}, []float64{10})
	if _, err := sc.Allocation(); err != nil {
		t.Fatal(err)
	}
	before := sc.Stats().Solves

	// Partial progress does not change topology: no new solve.
	for i := 0; i < 5; i++ {
		done, err := sc.ReportProgress("a", []float64{1})
		if err != nil || done {
			t.Fatalf("progress %d: done=%v err=%v", i, done, err)
		}
		if _, err := sc.Allocation(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sc.Stats().Solves; got != before {
		t.Fatalf("progress caused %d extra solves", got-before)
	}
	if sc.Stats().Skipped == 0 {
		t.Fatal("expected cached queries to be counted")
	}
}

func TestProgressCompletesJob(t *testing.T) {
	sc := newTestScheduler(t, 2)
	_ = sc.AddJob("a", 1, []float64{2}, []float64{3})
	_ = sc.AddJob("b", 1, []float64{2}, []float64{3})
	done, err := sc.ReportProgress("a", []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("job should have completed")
	}
	if _, err := sc.Shares("a"); err == nil {
		t.Fatal("completed job still queryable")
	}
	// Survivor gets the whole site now.
	agg, _ := sc.Aggregate("b")
	if !feq(agg, 2) {
		t.Fatalf("survivor aggregate %g, want 2", agg)
	}
	st := sc.Stats()
	if st.Completed != 1 || st.Jobs != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestProgressSiteExhaustion(t *testing.T) {
	// Job has work at two sites; exhausting one must drop its demand there
	// and trigger a re-solve giving the freed capacity to the other job.
	sc := newTestScheduler(t, 1, 1)
	_ = sc.AddJob("multi", 1, []float64{1, 1}, []float64{2, 5})
	_ = sc.AddJob("pinned", 1, []float64{1, 0}, []float64{5, 0})
	if _, err := sc.Allocation(); err != nil {
		t.Fatal(err)
	}
	// Exhaust multi's site-0 work.
	if _, err := sc.ReportProgress("multi", []float64{2, 0}); err != nil {
		t.Fatal(err)
	}
	sh, err := sc.Shares("multi")
	if err != nil {
		t.Fatal(err)
	}
	if sh[0] != 0 {
		t.Fatalf("exhausted site still allocated: %v", sh)
	}
	agg, _ := sc.Aggregate("pinned")
	if !feq(agg, 1) {
		t.Fatalf("pinned aggregate %g after exhaustion, want full site", agg)
	}
}

func TestProgressErrors(t *testing.T) {
	sc := newTestScheduler(t, 1)
	_ = sc.AddJob("a", 1, []float64{1}, nil)
	if _, err := sc.ReportProgress("nope", []float64{0}); err == nil {
		t.Fatal("unknown job accepted")
	}
	if _, err := sc.ReportProgress("a", []float64{0, 0}); err == nil {
		t.Fatal("wrong-length progress accepted")
	}
	if _, err := sc.ReportProgress("a", []float64{-1}); err == nil {
		t.Fatal("negative progress accepted")
	}
}

func TestWeightsRespected(t *testing.T) {
	sc := newTestScheduler(t, 6)
	_ = sc.AddJob("light", 1, []float64{10}, nil)
	_ = sc.AddJob("heavy", 2, []float64{10}, nil)
	la, _ := sc.Aggregate("light")
	ha, _ := sc.Aggregate("heavy")
	if !feq(la, 2) || !feq(ha, 4) {
		t.Fatalf("weighted split %g/%g, want 2/4", la, ha)
	}
}

func TestDefaultWeight(t *testing.T) {
	sc := newTestScheduler(t, 2)
	_ = sc.AddJob("a", 0, []float64{2}, nil) // weight defaults to 1
	_ = sc.AddJob("b", 1, []float64{2}, nil)
	aa, _ := sc.Aggregate("a")
	if !feq(aa, 1) {
		t.Fatalf("default-weight aggregate %g, want 1", aa)
	}
}

func TestEmptySchedulerAllocation(t *testing.T) {
	sc := newTestScheduler(t, 1)
	m, err := sc.Allocation()
	if err != nil || len(m) != 0 {
		t.Fatalf("empty allocation %v err %v", m, err)
	}
}

func TestInstanceSnapshot(t *testing.T) {
	sc := newTestScheduler(t, 1, 2)
	_ = sc.AddJob("a", 1.5, []float64{1, 2}, []float64{3, 4})
	in := sc.Instance()
	if in.NumJobs() != 1 || in.NumSites() != 2 {
		t.Fatalf("snapshot dims %dx%d", in.NumJobs(), in.NumSites())
	}
	if in.Weight[0] != 1.5 || in.Work[0][1] != 4 || in.JobName[0] != "a" {
		t.Fatalf("snapshot lost fields: %+v", in)
	}
	// Mutating the snapshot must not affect the scheduler.
	in.Demand[0][0] = 99
	sh, _ := sc.Shares("a")
	if sh[0] > 1+1e-9 {
		t.Fatal("snapshot aliases live state")
	}
}

func TestPolicySelection(t *testing.T) {
	// Under PS-MMF the pinned job gets only half of the contested site.
	sc, err := New(Config{SiteCapacity: []float64{1, 1}, Policy: policy.PSMMF})
	if err != nil {
		t.Fatal(err)
	}
	_ = sc.AddJob("flexible", 1, []float64{1, 1}, nil)
	_ = sc.AddJob("pinned", 1, []float64{1, 0}, nil)
	agg, _ := sc.Aggregate("pinned")
	if !feq(agg, 0.5) {
		t.Fatalf("PS-MMF pinned aggregate %g, want 0.5", agg)
	}
}

func TestConcurrentAccess(t *testing.T) {
	sc := newTestScheduler(t, 4, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := string(rune('a' + w))
			if err := sc.AddJob(id, 1, []float64{2, 2}, []float64{10, 10}); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 20; i++ {
				if _, err := sc.Shares(id); err != nil {
					t.Error(err)
					return
				}
				if _, err := sc.ReportProgress(id, []float64{0.1, 0.1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := sc.Stats().Jobs; got != 8 {
		t.Fatalf("jobs %d, want 8", got)
	}
	// All shares must form a feasible allocation.
	m, err := sc.Allocation()
	if err != nil {
		t.Fatal(err)
	}
	var load0, load1 float64
	for _, sh := range m {
		load0 += sh[0]
		load1 += sh[1]
	}
	if load0 > 4+1e-6 || load1 > 4+1e-6 {
		t.Fatalf("over-allocated: %g/%g", load0, load1)
	}
}

func TestSolveCountedOncePerChange(t *testing.T) {
	sc := newTestScheduler(t, 1)
	_ = sc.AddJob("a", 1, []float64{1}, nil)
	_, _ = sc.Allocation()
	_, _ = sc.Allocation()
	_, _ = sc.Shares("a")
	st := sc.Stats()
	if st.Solves != 1 {
		t.Fatalf("solves %d, want 1", st.Solves)
	}
	if st.Skipped != 2 {
		t.Fatalf("skipped %d, want 2", st.Skipped)
	}
}

func TestUpdateWeight(t *testing.T) {
	sc := newTestScheduler(t, 6)
	_ = sc.AddJob("a", 1, []float64{6}, nil)
	_ = sc.AddJob("b", 1, []float64{6}, nil)
	aa, _ := sc.Aggregate("a")
	if !feq(aa, 3) {
		t.Fatalf("initial split %g", aa)
	}
	if err := sc.UpdateWeight("a", 2); err != nil {
		t.Fatal(err)
	}
	aa, _ = sc.Aggregate("a")
	bb, _ := sc.Aggregate("b")
	if !feq(aa, 4) || !feq(bb, 2) {
		t.Fatalf("after weight bump %g/%g, want 4/2", aa, bb)
	}
	if err := sc.UpdateWeight("ghost", 2); err == nil {
		t.Fatal("unknown job accepted")
	}
	// Same weight: no re-solve.
	before := sc.Stats().Solves
	_ = sc.UpdateWeight("a", 2)
	_, _ = sc.Allocation()
	if sc.Stats().Solves != before {
		t.Fatal("no-op weight update caused a solve")
	}
	// Weight <= 0 resets to 1.
	_ = sc.UpdateWeight("a", 0)
	aa, _ = sc.Aggregate("a")
	if !feq(aa, 3) {
		t.Fatalf("reset weight split %g, want 3", aa)
	}
}

func TestStatsSolveDurations(t *testing.T) {
	sc := newTestScheduler(t, 1, 1)
	var hookDurs []time.Duration
	sc.SetOnSolve(func(d time.Duration) { hookDurs = append(hookDurs, d) })
	if st := sc.Stats(); st.LastSolve != 0 || st.TotalSolveTime != 0 {
		t.Fatalf("fresh controller has solve durations: %+v", st)
	}
	if err := sc.AddJob("a", 1, []float64{1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Allocation(); err != nil {
		t.Fatal(err)
	}
	st := sc.Stats()
	if st.Solves != 1 || st.LastSolve <= 0 || st.TotalSolveTime < st.LastSolve {
		t.Fatalf("after one solve: %+v", st)
	}
	if len(hookDurs) != 1 || hookDurs[0] != st.LastSolve {
		t.Fatalf("OnSolve hook saw %v, stats say %v", hookDurs, st.LastSolve)
	}
	// A cached query must not touch the durations.
	if _, err := sc.Allocation(); err != nil {
		t.Fatal(err)
	}
	if st2 := sc.Stats(); st2.TotalSolveTime != st.TotalSolveTime || len(hookDurs) != 1 {
		t.Fatalf("cached query changed solve accounting: %+v", st2)
	}
	// Another dirtying mutation accumulates.
	if err := sc.AddJob("b", 1, []float64{1, 0}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Allocation(); err != nil {
		t.Fatal(err)
	}
	if st3 := sc.Stats(); st3.Solves != 2 || st3.TotalSolveTime <= st.TotalSolveTime || len(hookDurs) != 2 {
		t.Fatalf("after second solve: %+v (hook %v)", st3, hookDurs)
	}
}

// TestResolveConsistentView checks Resolve's read-only-view contract: the
// instance and share rows it returns are immutable snapshots, so a view
// taken before further mutations must be unchanged afterwards — mutations
// replace rows, they never write published ones in place.
func TestResolveConsistentView(t *testing.T) {
	sc := newTestScheduler(t, 1, 1)
	for _, id := range []string{"a", "b", "c"} {
		if err := sc.AddJob(id, 1, []float64{1, 1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	in, shares, err := sc.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if in.NumJobs() != 3 || len(shares) != 3 {
		t.Fatalf("resolve: %d jobs, %d share rows", in.NumJobs(), len(shares))
	}
	for _, id := range in.JobName {
		if len(shares[id]) != in.NumSites() {
			t.Fatalf("job %q has row %v", id, shares[id])
		}
	}
	before := core.Instance{
		SiteCapacity: append([]float64(nil), in.SiteCapacity...),
		Demand:       [][]float64{append([]float64(nil), in.Demand[0]...)},
	}
	shareA := append([]float64(nil), shares["a"]...)

	// Mutate the controller every way that touches job "a"'s state: the
	// published view must not move.
	if err := sc.UpdateWeight("a", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ReportProgress("a", []float64{0.4, 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := sc.RemoveJob("b"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sc.Resolve(); err != nil {
		t.Fatal(err)
	}
	for s := range before.SiteCapacity {
		if in.SiteCapacity[s] != before.SiteCapacity[s] {
			t.Fatalf("site %d capacity moved under a published view: %g -> %g",
				s, before.SiteCapacity[s], in.SiteCapacity[s])
		}
	}
	for s, d := range before.Demand[0] {
		if in.Demand[0][s] != d {
			t.Fatalf("demand row mutated in place under a published view: %v -> %v",
				before.Demand[0], in.Demand[0])
		}
	}
	for s, v := range shareA {
		if shares["a"][s] != v {
			t.Fatalf("share row mutated in place under a published view: %v -> %v",
				shareA, shares["a"])
		}
	}
}

package scheduler

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hierarchy"
)

// Queue support: jobs may be enqueued under named queues with weights
// (organizations, teams). When any queue is configured, allocation runs
// hierarchically (internal/hierarchy): capacity divides across queues by
// weight — independent of how many jobs each enqueues — and fairly within
// each queue. Jobs added with AddJob land in the anonymous default queue,
// which participates with weight 1.

// defaultQueue is the anonymous queue for AddJob.
const defaultQueue = ""

// AddQueue declares a queue with the given weight (<= 0 defaults to 1).
// Re-declaring a queue updates its weight.
func (sc *Scheduler) AddQueue(name string, weight float64) error {
	if name == defaultQueue {
		return fmt.Errorf("scheduler: queue name must be non-empty")
	}
	if weight <= 0 {
		weight = 1
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.queueWeight == nil {
		sc.queueWeight = map[string]float64{}
	}
	sc.queueWeight[name] = weight
	sc.needSolve = true
	return nil
}

// AddJobInQueue registers a job under a declared queue.
func (sc *Scheduler) AddJobInQueue(queue, id string, weight float64, demand, work []float64) error {
	sc.mu.Lock()
	declared := false
	if sc.queueWeight != nil {
		_, declared = sc.queueWeight[queue]
	}
	sc.mu.Unlock()
	if !declared {
		return fmt.Errorf("scheduler: unknown queue %q", queue)
	}
	if err := sc.AddJob(id, weight, demand, work); err != nil {
		return err
	}
	sc.mu.Lock()
	if sc.jobQueue == nil {
		sc.jobQueue = map[string]string{}
	}
	sc.jobQueue[id] = queue
	sc.mu.Unlock()
	return nil
}

// QueueOf reports the queue a job belongs to ("" for the default queue).
func (sc *Scheduler) QueueOf(id string) (string, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if _, ok := sc.jobs[id]; !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return sc.jobQueue[id], nil
}

// queued reports whether hierarchical allocation is needed: at least one
// live job sits in a named queue.
func (sc *Scheduler) queuedLocked() bool {
	for id := range sc.jobQueue {
		if _, live := sc.jobs[id]; live {
			return true
		}
	}
	return false
}

// solveHierarchicalLocked allocates with queue-level fairness. It clears
// needSolve but NOT the per-job dirty set: the dirty set tracks what the
// incremental solver has not yet seen, and this path bypasses it.
func (sc *Scheduler) solveHierarchicalLocked(in *core.Instance) error {
	// Build groups in a deterministic order: default queue first (if it
	// has jobs), then named queues by first appearance. Row indices refer
	// to the view, whose JobName is the live insertion order.
	groupIdx := map[string]int{}
	var groups []hierarchy.Group
	for i, id := range in.JobName {
		q := sc.jobQueue[id]
		gi, ok := groupIdx[q]
		if !ok {
			gi = len(groups)
			groupIdx[q] = gi
			w := 1.0
			if q != defaultQueue {
				w = sc.queueWeight[q]
			}
			groups = append(groups, hierarchy.Group{Name: q, Weight: w})
		}
		groups[gi].Jobs = append(groups[gi].Jobs, i)
	}
	res, err := hierarchy.Allocate(sc.cfg.Solver, in, groups)
	if err != nil {
		return fmt.Errorf("scheduler: %w", err)
	}
	sc.stats.Solves++
	sc.installSharesLocked(in, res.Alloc.Share)
	sc.needSolve = false
	return nil
}

package scheduler

import (
	"bytes"
	"testing"
)

func TestQueueFairnessIndependentOfJobCount(t *testing.T) {
	sc := newTestScheduler(t, 6)
	// Note: capacity 6 at one site.
	if err := sc.AddQueue("research", 1); err != nil {
		t.Fatal(err)
	}
	if err := sc.AddQueue("prod", 1); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"r1", "r2", "r3"} {
		if err := sc.AddJobInQueue("research", id, 1, []float64{6}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.AddJobInQueue("prod", "p1", 1, []float64{6}, nil); err != nil {
		t.Fatal(err)
	}
	// Queues split 3/3 regardless of member counts.
	p, _ := sc.Aggregate("p1")
	if !feq(p, 3) {
		t.Fatalf("prod job aggregate %g, want 3", p)
	}
	r, _ := sc.Aggregate("r1")
	if !feq(r, 1) {
		t.Fatalf("research member aggregate %g, want 1", r)
	}
}

func TestQueueWeights(t *testing.T) {
	sc := newTestScheduler(t, 6)
	_ = sc.AddQueue("light", 1)
	_ = sc.AddQueue("heavy", 2)
	_ = sc.AddJobInQueue("light", "l", 1, []float64{6}, nil)
	_ = sc.AddJobInQueue("heavy", "h", 1, []float64{6}, nil)
	l, _ := sc.Aggregate("l")
	h, _ := sc.Aggregate("h")
	if !feq(l, 2) || !feq(h, 4) {
		t.Fatalf("weighted queues %g/%g, want 2/4", l, h)
	}
}

func TestDefaultQueueParticipates(t *testing.T) {
	sc := newTestScheduler(t, 4)
	_ = sc.AddQueue("q", 1)
	_ = sc.AddJobInQueue("q", "a", 1, []float64{4}, nil)
	_ = sc.AddJob("b", 1, []float64{4}, nil) // default queue, weight 1
	a, _ := sc.Aggregate("a")
	b, _ := sc.Aggregate("b")
	if !feq(a, 2) || !feq(b, 2) {
		t.Fatalf("default-queue split %g/%g, want 2/2", a, b)
	}
}

func TestAddJobInQueueErrors(t *testing.T) {
	sc := newTestScheduler(t, 1)
	if err := sc.AddJobInQueue("nope", "a", 1, []float64{1}, nil); err == nil {
		t.Fatal("undeclared queue accepted")
	}
	if err := sc.AddQueue("", 1); err == nil {
		t.Fatal("empty queue name accepted")
	}
	_ = sc.AddQueue("q", 1)
	if err := sc.AddJobInQueue("q", "a", 1, []float64{1, 2}, nil); err != nil {
		// wrong demand length: error expected, and the queue map must not
		// hold a phantom entry.
		if q, _ := sc.QueueOf("a"); q != "" {
			t.Fatal("phantom queue assignment")
		}
	} else {
		t.Fatal("bad demand accepted")
	}
}

func TestQueueOf(t *testing.T) {
	sc := newTestScheduler(t, 1)
	_ = sc.AddQueue("q", 1)
	_ = sc.AddJobInQueue("q", "a", 1, []float64{1}, nil)
	_ = sc.AddJob("b", 1, []float64{1}, nil)
	if q, err := sc.QueueOf("a"); err != nil || q != "q" {
		t.Fatalf("QueueOf(a)=%q err=%v", q, err)
	}
	if q, err := sc.QueueOf("b"); err != nil || q != "" {
		t.Fatalf("QueueOf(b)=%q err=%v", q, err)
	}
	if _, err := sc.QueueOf("ghost"); err == nil {
		t.Fatal("unknown job accepted")
	}
}

func TestQueueRemovalCleansAssignment(t *testing.T) {
	sc := newTestScheduler(t, 2)
	_ = sc.AddQueue("q", 1)
	_ = sc.AddJobInQueue("q", "a", 1, []float64{2}, []float64{1})
	done, err := sc.ReportProgress("a", []float64{1})
	if err != nil || !done {
		t.Fatalf("done=%v err=%v", done, err)
	}
	// Re-adding the same ID in the default queue must not inherit "q".
	_ = sc.AddJob("a", 1, []float64{2}, nil)
	if q, _ := sc.QueueOf("a"); q != "" {
		t.Fatalf("stale queue assignment %q", q)
	}
}

func TestQueueSnapshotRoundTrip(t *testing.T) {
	a := newTestScheduler(t, 6)
	_ = a.AddQueue("research", 1)
	_ = a.AddQueue("prod", 2)
	_ = a.AddJobInQueue("research", "r", 1, []float64{6}, nil)
	_ = a.AddJobInQueue("prod", "p", 1, []float64{6}, nil)

	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b := newTestScheduler(t, 6)
	if err := b.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	p, _ := b.Aggregate("p")
	if !feq(p, 4) {
		t.Fatalf("restored prod aggregate %g, want 4 (queue weights lost?)", p)
	}
	if q, _ := b.QueueOf("r"); q != "research" {
		t.Fatalf("restored queue %q", q)
	}
}

func TestQueueSnapshotUndeclaredRejected(t *testing.T) {
	sc := newTestScheduler(t, 1)
	err := sc.Restore(Snapshot{Jobs: []Job{
		{ID: "a", Queue: "ghost", Demand: []float64{1}, Remaining: []float64{1}},
	}})
	if err == nil {
		t.Fatal("undeclared queue in snapshot accepted")
	}
}

func TestQueueCrossSiteRouting(t *testing.T) {
	// Queue-level AMF routes the flexible queue away from the pinned one.
	sc := newTestScheduler(t, 1, 1)
	_ = sc.AddQueue("pinned", 1)
	_ = sc.AddQueue("flexible", 1)
	_ = sc.AddJobInQueue("pinned", "p", 1, []float64{1, 0}, nil)
	_ = sc.AddJobInQueue("flexible", "f", 1, []float64{1, 1}, nil)
	p, _ := sc.Aggregate("p")
	f, _ := sc.Aggregate("f")
	if !feq(p, 1) || !feq(f, 1) {
		t.Fatalf("cross-site queue routing %g/%g, want 1/1", p, f)
	}
}

package scheduler

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/policy"
)

// TestPolicyEquivalenceStreams is the acceptance property test of the
// pluggable policy layer: for every selectable policy, 200 random churn
// streams are driven through (a) a controller on the default serving path
// — incremental solving and/or the policy's own result cache engaged —
// and (b) a from-scratch controller with a separate policy instance, and
// the allocations must agree at 1e-9·Scale after every mutation. Each
// step is additionally checked against a brand-new, cache-cold policy
// instance solving the resolved view directly, so no cache on either
// controller can mask a staleness bug. Run under -race in CI.
func TestPolicyEquivalenceStreams(t *testing.T) {
	const (
		streams   = 200
		mutations = 8
	)
	for _, name := range policy.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(811))
			for stream := 0; stream < streams; stream++ {
				pol, err := policy.ForName(name)
				if err != nil {
					t.Fatal(err)
				}
				refPol, err := policy.ForName(name)
				if err != nil {
					t.Fatal(err)
				}
				h := newStreamHarnessPair(t, rng, pol, refPol, 2, 3)
				h.freshRef = func() policy.Policy {
					p, err := policy.ForName(name)
					if err != nil {
						t.Fatal(err)
					}
					return p
				}
				for i := 0; i < 2+rng.Intn(4); i++ {
					h.addJob()
				}
				h.compare(fmt.Sprintf("policy %s stream %d init", name, stream))
				for mut := 0; mut < mutations; mut++ {
					switch h.rng.Intn(5) {
					case 0:
						h.addJob()
					case 1:
						h.removeJob()
					case 2:
						h.updateWeight()
					default:
						h.reportProgress()
					}
					h.compare(fmt.Sprintf("policy %s stream %d mut %d", name, stream, mut))
				}
			}
		})
	}
}

// TestSchedulerPolicySwitchMidStream switches the policy on a live,
// churning controller and keeps comparing against a from-scratch
// controller switched at the same point: a runtime switch must trigger a
// clean full re-solve (every job re-marked dirty, incremental state
// reinstalled or dropped per the new policy's capability), never serve an
// allocation computed under the old policy.
func TestSchedulerPolicySwitchMidStream(t *testing.T) {
	names := policy.Names()
	rng := rand.New(rand.NewSource(4711))
	for trial := 0; trial < 24; trial++ {
		from := names[rng.Intn(len(names))]
		to := names[rng.Intn(len(names))]
		polInc, err := policy.ForName(from)
		if err != nil {
			t.Fatal(err)
		}
		polRef, err := policy.ForName(from)
		if err != nil {
			t.Fatal(err)
		}
		h := newStreamHarnessPair(t, rng, polInc, polRef, 2, 3)
		for i := 0; i < 4; i++ {
			h.addJob()
		}
		h.compare(fmt.Sprintf("trial %d (%s) pre-switch", trial, from))
		for mut := 0; mut < 4; mut++ {
			h.updateWeight()
			h.reportProgress()
			h.compare(fmt.Sprintf("trial %d (%s) mut %d", trial, from, mut))
		}
		for _, sc := range []*Scheduler{h.inc, h.ref} {
			if err := sc.SetPolicyName(to); err != nil {
				t.Fatal(err)
			}
			if got := sc.PolicyName(); got != to {
				t.Fatalf("trial %d: PolicyName %q after switch to %q", trial, got, to)
			}
		}
		h.freshRef = func() policy.Policy {
			p, err := policy.ForName(to)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		h.compare(fmt.Sprintf("trial %d %s->%s post-switch", trial, from, to))
		for mut := 0; mut < 4; mut++ {
			switch h.rng.Intn(4) {
			case 0:
				h.addJob()
			case 1:
				h.removeJob()
			default:
				h.updateWeight()
			}
			h.compare(fmt.Sprintf("trial %d %s->%s mut %d", trial, from, to, mut))
		}
	}
}

// TestSchedulerSetPolicyNameErrors pins the error surface of runtime
// switching: unknown names are rejected without touching the active
// policy, and switching to the same policy is a no-op.
func TestSchedulerSetPolicyNameErrors(t *testing.T) {
	sc, err := New(Config{SiteCapacity: []float64{1, 1}, Policy: policy.AMF})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.SetPolicyName("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if got := sc.PolicyName(); got != "amf" {
		t.Fatalf("policy changed to %q by a failed switch", got)
	}
	if err := sc.SetPolicyName("amf"); err != nil {
		t.Fatalf("same-policy switch: %v", err)
	}
	if err := sc.SetPolicyName("drf"); err != nil {
		t.Fatal(err)
	}
	if got := sc.PolicyName(); got != "drf" {
		t.Fatalf("PolicyName %q, want drf", got)
	}
}

// TestSnapshotPolicyMismatchRefused: a snapshot taken under one policy
// must not restore into a controller running another — the WAL recovery
// path relies on this refusal to surface misconfigured deployments.
func TestSnapshotPolicyMismatchRefused(t *testing.T) {
	src, err := New(Config{SiteCapacity: []float64{2, 2}, Policy: policy.AMF})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddJob("a", 1, []float64{1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	snap := src.Snapshot()
	if snap.Policy != "amf" {
		t.Fatalf("snapshot policy %q, want amf", snap.Policy)
	}

	dst, err := New(Config{SiteCapacity: []float64{2, 2}, Policy: mustPolicy(t, "drf")})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(snap); err == nil {
		t.Fatal("mismatched snapshot restored")
	}
	// Same policy restores fine; a legacy snapshot without the header is
	// accepted for compatibility.
	same, err := New(Config{SiteCapacity: []float64{2, 2}, Policy: policy.AMF})
	if err != nil {
		t.Fatal(err)
	}
	if err := same.Restore(snap); err != nil {
		t.Fatalf("matching restore: %v", err)
	}
	snap.Policy = ""
	if err := dst.Restore(snap); err != nil {
		t.Fatalf("legacy snapshot refused: %v", err)
	}
}

func mustPolicy(t *testing.T, name string) policy.Policy {
	t.Helper()
	p, err := policy.ForName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

package scheduler

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
)

// streamHarness drives two controllers — one incremental, one forced
// from-scratch — through an identical mutation stream and compares their
// allocations after every step. Jobs demand within site blocks so the
// instance keeps the sparse multi-component shape the incremental path
// targets.
type streamHarness struct {
	t         *testing.T
	inc, ref  *Scheduler
	rng       *rand.Rand
	blocks    int
	spb       int
	live      []string
	next      int
	queued    map[string]bool
	numQueues int
	// freshRef, when set, builds a brand-new policy instance per compare:
	// the serving-path allocation is additionally checked against a direct,
	// cache-cold solve of the resolved instance.
	freshRef func() policy.Policy
}

func newStreamHarness(t *testing.T, rng *rand.Rand, pol policy.Policy, blocks, spb int) *streamHarness {
	return newStreamHarnessPair(t, rng, pol, pol, blocks, spb)
}

// newStreamHarnessPair gives the incremental and the from-scratch
// controller separate policy instances, so a stateful policy's cache
// (DRF) is never shared between the two sides being compared.
func newStreamHarnessPair(t *testing.T, rng *rand.Rand, pol, refPol policy.Policy, blocks, spb int) *streamHarness {
	t.Helper()
	caps := make([]float64, blocks*spb)
	for s := range caps {
		caps[s] = 0.5 + rng.Float64()*4.5
	}
	inc, err := New(Config{SiteCapacity: caps, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	// The incremental solver only engages for policies that declare the
	// capability; the "inc" controller still exercises whatever caching the
	// policy itself owns (e.g. DRF's component result cache).
	if pol.Capabilities().Incremental != (inc.inc != nil) {
		t.Fatalf("policy %s: incremental capability %v but solver installed = %v",
			pol.Name(), pol.Capabilities().Incremental, inc.inc != nil)
	}
	ref, err := New(Config{SiteCapacity: append([]float64(nil), caps...), Policy: refPol, DisableIncremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.inc != nil {
		t.Fatal("DisableIncremental must force the from-scratch path")
	}
	return &streamHarness{t: t, inc: inc, ref: ref, rng: rng, blocks: blocks, spb: spb, queued: map[string]bool{}}
}

func (h *streamHarness) blockDemand(b int) []float64 {
	row := make([]float64, h.blocks*h.spb)
	s0 := b * h.spb
	row[s0] = 0.1 + h.rng.Float64()*2 // anchor keeps the block connected
	for _, off := range h.rng.Perm(h.spb - 1)[:h.rng.Intn(h.spb)] {
		row[s0+1+off] = 0.1 + h.rng.Float64()*2
	}
	return row
}

func (h *streamHarness) addJob() {
	id := fmt.Sprintf("j%d", h.next)
	h.next++
	demand := h.blockDemand(h.rng.Intn(h.blocks))
	w := 0.5 + h.rng.Float64()*3.5
	for _, sc := range []*Scheduler{h.inc, h.ref} {
		if err := sc.AddJob(id, w, demand, nil); err != nil {
			h.t.Fatal(err)
		}
	}
	h.live = append(h.live, id)
}

func (h *streamHarness) addQueuedJob() {
	q := fmt.Sprintf("q%d", h.rng.Intn(2))
	h.numQueues++
	id := fmt.Sprintf("j%d", h.next)
	h.next++
	demand := h.blockDemand(h.rng.Intn(h.blocks))
	w := 0.5 + h.rng.Float64()*3.5
	for _, sc := range []*Scheduler{h.inc, h.ref} {
		if err := sc.AddQueue(q, 2); err != nil {
			h.t.Fatal(err)
		}
		if err := sc.AddJobInQueue(q, id, w, demand, nil); err != nil {
			h.t.Fatal(err)
		}
	}
	h.live = append(h.live, id)
	h.queued[id] = true
}

func (h *streamHarness) removeJob() {
	if len(h.live) == 0 {
		return
	}
	i := h.rng.Intn(len(h.live))
	id := h.live[i]
	for _, sc := range []*Scheduler{h.inc, h.ref} {
		if err := sc.RemoveJob(id); err != nil {
			h.t.Fatal(err)
		}
	}
	h.live = append(h.live[:i], h.live[i+1:]...)
	delete(h.queued, id)
}

func (h *streamHarness) updateWeight() {
	if len(h.live) == 0 {
		return
	}
	id := h.live[h.rng.Intn(len(h.live))]
	w := 0.5 + h.rng.Float64()*3.5
	for _, sc := range []*Scheduler{h.inc, h.ref} {
		if err := sc.UpdateWeight(id, w); err != nil {
			h.t.Fatal(err)
		}
	}
}

func (h *streamHarness) reportProgress() {
	if len(h.live) == 0 {
		return
	}
	i := h.rng.Intn(len(h.live))
	id := h.live[i]
	done := make([]float64, h.blocks*h.spb)
	for s := range done {
		done[s] = h.rng.Float64() * 1.5
	}
	var completed bool
	for k, sc := range []*Scheduler{h.inc, h.ref} {
		c, err := sc.ReportProgress(id, done)
		if err != nil {
			h.t.Fatal(err)
		}
		if k == 0 {
			completed = c
		} else if c != completed {
			h.t.Fatalf("job %q: completion disagrees between incremental (%v) and reference (%v)", id, completed, c)
		}
	}
	if completed {
		h.live = append(h.live[:i], h.live[i+1:]...)
		delete(h.queued, id)
	}
}

// compare resolves both controllers and asserts equal aggregates at
// 1e-9·Scale plus feasibility of the incremental allocation.
func (h *streamHarness) compare(tag string) {
	h.t.Helper()
	inIn, shInc, err := h.inc.Resolve()
	if err != nil {
		h.t.Fatalf("%s: incremental resolve: %v", tag, err)
	}
	_, shRef, err := h.ref.Resolve()
	if err != nil {
		h.t.Fatalf("%s: reference resolve: %v", tag, err)
	}
	if len(shInc) != len(shRef) {
		h.t.Fatalf("%s: %d share rows (incremental) vs %d (reference)", tag, len(shInc), len(shRef))
	}
	tol := 1e-9 * inIn.Scale()
	for id, rowInc := range shInc {
		rowRef, ok := shRef[id]
		if !ok {
			h.t.Fatalf("%s: job %q only in incremental allocation", tag, id)
		}
		var aInc, aRef float64
		for s := range rowInc {
			aInc += rowInc[s]
			aRef += rowRef[s]
		}
		if d := math.Abs(aInc - aRef); d > tol {
			h.t.Fatalf("%s: job %q aggregate %g (incremental) vs %g (scratch), |diff| %g > %g",
				tag, id, aInc, aRef, d, tol)
		}
	}
	alloc := &core.Allocation{Inst: inIn, Share: make([][]float64, len(inIn.JobName))}
	for i, id := range inIn.JobName {
		alloc.Share[i] = shInc[id]
	}
	if err := alloc.CheckFeasible(1e-6 * inIn.Scale()); err != nil {
		h.t.Fatalf("%s: incremental allocation infeasible: %v", tag, err)
	}
	if h.freshRef == nil {
		return
	}
	// Same solver configuration as the controllers' default (New sets
	// SkipJCTRefine), so the only variable is the policy instance's state.
	direct, _, err := h.freshRef().Allocate(context.Background(),
		&policy.View{Inst: inIn, Solver: &core.Solver{SkipJCTRefine: true}})
	if err != nil {
		h.t.Fatalf("%s: fresh-policy solve: %v", tag, err)
	}
	for i, id := range inIn.JobName {
		var aInc, aDir float64
		for s := range direct.Share[i] {
			aInc += shInc[id][s]
			aDir += direct.Share[i][s]
		}
		if d := math.Abs(aInc - aDir); d > tol {
			h.t.Fatalf("%s: job %q aggregate %g (serving path) vs %g (fresh policy), |diff| %g > %g",
				tag, id, aInc, aDir, d, tol)
		}
	}
}

// TestIncrementalSchedulerEquivalenceStreams is the acceptance property
// test: over 200 random mutation streams (AMF and Enhanced AMF), a
// controller on the incremental path produces the same allocation as a
// from-scratch controller after every mutation. Run under -race in CI this
// also exercises the parallel component workers.
func TestIncrementalSchedulerEquivalenceStreams(t *testing.T) {
	const (
		streams   = 200
		mutations = 12
	)
	rng := rand.New(rand.NewSource(2026))
	for stream := 0; stream < streams; stream++ {
		pol := policy.AMF
		if stream%2 == 1 {
			pol = policy.EnhancedAMF
		}
		h := newStreamHarness(t, rng, pol, 2+rng.Intn(3), 3)
		for i := 0; i < 3+rng.Intn(5); i++ {
			h.addJob()
		}
		h.compare(fmt.Sprintf("stream %d init", stream))
		for mut := 0; mut < mutations; mut++ {
			switch h.rng.Intn(5) {
			case 0:
				h.addJob()
			case 1:
				h.removeJob()
			case 2:
				h.updateWeight()
			default:
				h.reportProgress()
			}
			h.compare(fmt.Sprintf("stream %d (%s) mut %d", stream, pol.Name(), mut))
		}
	}
}

// TestIncrementalSchedulerLongStream runs one long stream of 500+
// mutations including queue operations: enqueued jobs force the
// hierarchical (non-incremental) solve path, and their completion drops
// the controller back to the incremental path — the dirty set must
// survive the round trip so the incremental solver revalidates everything
// that changed while it was bypassed.
func TestIncrementalSchedulerLongStream(t *testing.T) {
	const mutations = 520
	rng := rand.New(rand.NewSource(777))
	h := newStreamHarness(t, rng, policy.AMF, 4, 3)
	for i := 0; i < 6; i++ {
		h.addJob()
	}
	h.compare("init")
	for mut := 0; mut < mutations; mut++ {
		switch h.rng.Intn(12) {
		case 0:
			h.addJob()
		case 1:
			h.removeJob()
		case 2, 3:
			h.updateWeight()
		case 4:
			h.addQueuedJob() // flips both controllers onto the hierarchical path
		case 5:
			// Drain the queues so the controllers drop back to flat solving.
			for id := range h.queued {
				for _, sc := range []*Scheduler{h.inc, h.ref} {
					if err := sc.RemoveJob(id); err != nil {
						t.Fatal(err)
					}
				}
				for i, l := range h.live {
					if l == id {
						h.live = append(h.live[:i], h.live[i+1:]...)
						break
					}
				}
				delete(h.queued, id)
			}
		default:
			h.reportProgress()
		}
		h.compare(fmt.Sprintf("mut %d", mut))
	}
	if st := h.inc.Stats(); st.CacheHits+int64(st.LastReused) == 0 {
		t.Fatalf("long stream never reused anything: %+v", st)
	}
}

// TestProgressToleranceLargeWork is the regression for the exhaustion
// tolerance: with ~1e12 of work reported in inexact thirds, float residue
// (~1e-4) dwarfs an absolute 1e-12 epsilon, and the site would never be
// considered exhausted. The tolerance must scale with the work magnitude.
func TestProgressToleranceLargeWork(t *testing.T) {
	sc := newTestScheduler(t, 10)
	const work = 1e12
	if err := sc.AddJob("big", 1, []float64{100}, []float64{work}); err != nil {
		t.Fatal(err)
	}
	third := work / 3 // not exactly representable: thirds leave residue
	var completed bool
	for i := 0; i < 3; i++ {
		var err error
		completed, err = sc.ReportProgress("big", []float64{third})
		if err != nil {
			t.Fatal(err)
		}
		if i < 2 && completed {
			t.Fatalf("job completed after %d/3 of its work", i+1)
		}
	}
	if !completed {
		t.Fatal("job not completed after all work reported in thirds: exhaustion tolerance must be scale-relative")
	}
	if st := sc.Stats(); st.Completed != 1 || st.Jobs != 0 {
		t.Fatalf("completion not recorded: %+v", st)
	}
}

// TestTelemetryResetWithoutCoreSolve is the stale-telemetry regression: a
// hierarchical solve (queued jobs) runs the core solver and records
// decomposition numbers; after the queues drain, a PS-MMF flat solve never
// enters the core solver — the previous numbers are stale and must read
// zero, not linger.
func TestTelemetryResetWithoutCoreSolve(t *testing.T) {
	sc, err := New(Config{SiteCapacity: []float64{1, 1}, Policy: policy.PSMMF})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.AddQueue("q", 1); err != nil {
		t.Fatal(err)
	}
	if err := sc.AddJobInQueue("q", "a", 1, []float64{1, 0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sc.AddJob("b", 1, []float64{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Allocation(); err != nil {
		t.Fatal(err)
	}
	if st := sc.Stats(); st.LastComponents == 0 {
		t.Fatalf("hierarchical solve should run the core solver: %+v", st)
	}
	if err := sc.RemoveJob("a"); err != nil { // queue drained
		t.Fatal(err)
	}
	if _, err := sc.Allocation(); err != nil { // flat PS-MMF: no core solver
		t.Fatal(err)
	}
	st := sc.Stats()
	if st.LastComponents != 0 || st.LastLargestComponent != 0 || st.LastSpeedup != 0 {
		t.Fatalf("PS-MMF solve kept stale decomposition telemetry: %+v", st)
	}
	if st.LastReused != 0 || st.LastResolved != 0 {
		t.Fatalf("PS-MMF solve kept stale incremental telemetry: %+v", st)
	}
}

// TestIncrementalTelemetry pins the reuse counters surfaced in Stats: a
// single-job mutation on a multi-component set re-solves one component
// and reuses the rest.
func TestIncrementalTelemetry(t *testing.T) {
	caps := []float64{1, 1, 1, 1}
	sc, err := New(Config{SiteCapacity: caps, Policy: policy.AMF})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 4; b++ {
		demand := make([]float64, 4)
		demand[b] = 2
		if err := sc.AddJob(fmt.Sprintf("j%d", b), 1, demand, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sc.Allocation(); err != nil {
		t.Fatal(err)
	}
	st := sc.Stats()
	if st.LastComponents != 4 || st.LastResolved != 4 || st.LastReused != 0 {
		t.Fatalf("initial solve: %+v", st)
	}
	if err := sc.UpdateWeight("j2", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Allocation(); err != nil {
		t.Fatal(err)
	}
	st = sc.Stats()
	if st.LastResolved != 1 || st.LastReused != 3 {
		t.Fatalf("single-job mutation: resolved %d reused %d, want 1/3 (%+v)", st.LastResolved, st.LastReused, st)
	}
	if st.CacheMisses == 0 {
		t.Fatalf("cache accounting missing: %+v", st)
	}
}

// TestRemovalTombstonesPreserveOrder checks the O(1)-amortized removal
// path: heavy removal (past the compaction threshold) must preserve the
// insertion order of the survivors and keep the controller fully
// functional for later adds, snapshots and solves.
func TestRemovalTombstonesPreserveOrder(t *testing.T) {
	sc := newTestScheduler(t, 5, 5)
	const n = 100
	for i := 0; i < n; i++ {
		if err := sc.AddJob(fmt.Sprintf("j%03d", i), 1, []float64{1, 0.5}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Remove every job not divisible by 3, in a scattered order, driving
	// holes past the compaction threshold.
	for _, start := range []int{1, 2} {
		for i := start; i < n; i += 3 {
			if err := sc.RemoveJob(fmt.Sprintf("j%03d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	in := sc.Instance()
	var want []string
	for i := 0; i < n; i += 3 {
		want = append(want, fmt.Sprintf("j%03d", i))
	}
	if len(in.JobName) != len(want) {
		t.Fatalf("%d survivors, want %d", len(in.JobName), len(want))
	}
	for i, id := range want {
		if in.JobName[i] != id {
			t.Fatalf("survivor order broken at %d: got %q want %q (order must stay insertion order)", i, in.JobName[i], id)
		}
	}
	if err := sc.AddJob("tail", 1, []float64{1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	in = sc.Instance()
	if in.JobName[len(in.JobName)-1] != "tail" {
		t.Fatalf("new job not at the end: %v", in.JobName)
	}
	if _, err := sc.Allocation(); err != nil {
		t.Fatal(err)
	}
	snap := sc.Snapshot()
	if len(snap.Jobs) != len(want)+1 {
		t.Fatalf("snapshot has %d jobs, want %d", len(snap.Jobs), len(want)+1)
	}
	sc2 := newTestScheduler(t, 5, 5)
	if err := sc2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	in2 := sc2.Instance()
	for i := range in.JobName {
		if in2.JobName[i] != in.JobName[i] {
			t.Fatalf("restore broke order at %d: %q vs %q", i, in2.JobName[i], in.JobName[i])
		}
	}
}

package fairness

// Oracle reports whether an allocation target vector is jointly feasible.
// Feasible sets are assumed downward closed: reducing any component of a
// feasible vector keeps it feasible. The flow polytopes used by the AMF
// allocator satisfy this.
type Oracle func(target []float64) bool

// MaxMinViolation checks whether x is max-min fair over the downward-closed
// feasible set described by the oracle, given per-element upper bounds
// (demands). It returns the index of a violating element and true if one is
// found, or (-1, false) if x is max-min fair up to delta.
//
// The test applied for element i (unless x_i is demand-saturated) builds the
// probe vector z with z_i = x_i + delta, z_k = x_k for every k with
// x_k <= x_i, and z_k = 0 for every k with x_k > x_i. For a downward-closed
// feasible set, z being feasible is equivalent to "x_i can be raised while
// only elements strictly above x_i give anything up" — exactly a max-min
// fairness violation.
func MaxMinViolation(x, demands []float64, feasible Oracle, delta float64) (int, bool) {
	n := len(x)
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		if x[i] >= demands[i]-delta {
			continue // demand-saturated elements cannot be raised
		}
		for k := 0; k < n; k++ {
			switch {
			case k == i:
				z[k] = x[i] + delta
			case x[k] <= x[i]+delta/2:
				z[k] = x[k]
			default:
				z[k] = 0
			}
		}
		if feasible(z) {
			return i, true
		}
	}
	return -1, false
}

// WeightedMaxMinViolation is MaxMinViolation under weighted max-min
// fairness: comparisons between elements use normalized shares x_i/w_i.
// Weights must be positive.
func WeightedMaxMinViolation(x, demands, weights []float64, feasible Oracle, delta float64) (int, bool) {
	n := len(x)
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		if x[i] >= demands[i]-delta {
			continue
		}
		xi := x[i] / weights[i]
		for k := 0; k < n; k++ {
			switch {
			case k == i:
				z[k] = x[i] + delta
			case x[k]/weights[k] <= xi+delta/2:
				z[k] = x[k]
			default:
				z[k] = 0
			}
		}
		if feasible(z) {
			return i, true
		}
	}
	return -1, false
}

// LexLess compares two vectors in the leximin order after sorting each
// ascending: it reports whether a is leximin-smaller than b (i.e. b is
// fairer). Vectors must have equal length.
func LexLess(a, b []float64, tol float64) bool {
	as := sortedCopy(a)
	bs := sortedCopy(b)
	for i := range as {
		if as[i] < bs[i]-tol {
			return true
		}
		if as[i] > bs[i]+tol {
			return false
		}
	}
	return false
}

func sortedCopy(v []float64) []float64 {
	c := append([]float64(nil), v...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c
}

package fairness

import "math"

// JainIndex computes Jain's fairness index (sum x)^2 / (n * sum x^2),
// which is 1 for perfectly equal vectors and 1/n for maximally unequal
// ones. An all-zero or empty vector yields 1 (trivially fair).
func JainIndex(x []float64) float64 {
	if len(x) == 0 {
		return 1
	}
	var sum, sq float64
	for _, v := range x {
		sum += v
		sq += v * v
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(x)) * sq)
}

// MinMaxRatio returns min(x)/max(x), a direct measure of allocation
// balance; 1 means perfectly balanced. An empty or all-zero vector yields 1.
func MinMaxRatio(x []float64) float64 {
	if len(x) == 0 {
		return 1
	}
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, v := range x {
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	if mx <= 0 {
		return 1
	}
	return mn / mx
}

// NormalizedShares divides each element by its weight; used to compare
// weighted allocations on a common scale. Weights must be positive.
func NormalizedShares(x, weights []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] / weights[i]
	}
	return out
}

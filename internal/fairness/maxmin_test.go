package fairness

import (
	"math/rand"
	"testing"
)

// capOracle models a single shared capacity: feasible iff sum <= cap.
func capOracle(capacity float64) Oracle {
	return func(target []float64) bool {
		var sum float64
		for _, v := range target {
			sum += v
		}
		return sum <= capacity+1e-12
	}
}

func TestMaxMinViolationAcceptsWaterfill(t *testing.T) {
	demands := []float64{2, 4, 10, 7}
	capacity := 12.0
	x := Waterfill(capacity, demands)
	if i, bad := MaxMinViolation(x, demands, capOracle(capacity), 1e-6); bad {
		t.Fatalf("waterfill flagged unfair at index %d (x=%v)", i, x)
	}
}

func TestMaxMinViolationRejectsUnfair(t *testing.T) {
	demands := []float64{10, 10}
	capacity := 10.0
	x := []float64{2, 8} // feasible but not max-min fair
	i, bad := MaxMinViolation(x, demands, capOracle(capacity), 1e-6)
	if !bad {
		t.Fatal("unfair vector not flagged")
	}
	if i != 0 {
		t.Fatalf("flagged index %d, want 0 (the short-changed job)", i)
	}
}

func TestMaxMinViolationRejectsInefficient(t *testing.T) {
	demands := []float64{10, 10}
	x := []float64{3, 3} // equal but wasteful: capacity 10 unused
	if _, bad := MaxMinViolation(x, demands, capOracle(10), 1e-6); !bad {
		t.Fatal("inefficient vector not flagged")
	}
}

func TestMaxMinViolationDemandSaturated(t *testing.T) {
	demands := []float64{1, 100}
	x := []float64{1, 9}
	if i, bad := MaxMinViolation(x, demands, capOracle(10), 1e-6); bad {
		t.Fatalf("saturated allocation flagged at %d", i)
	}
}

func TestWeightedMaxMinViolation(t *testing.T) {
	demands := []float64{100, 100}
	weights := []float64{1, 3}
	capacity := 8.0
	fair := WeightedWaterfill(capacity, demands, weights) // 2, 6
	if i, bad := WeightedMaxMinViolation(fair, demands, weights, capOracle(capacity), 1e-6); bad {
		t.Fatalf("weighted waterfill flagged at %d: %v", i, fair)
	}
	unfair := []float64{4, 4}
	if _, bad := WeightedMaxMinViolation(unfair, demands, weights, capOracle(capacity), 1e-6); !bad {
		t.Fatal("equal split under unequal weights not flagged")
	}
}

func TestMaxMinViolationRandomizedAgainstWaterfill(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		demands := make([]float64, n)
		var total float64
		for i := range demands {
			demands[i] = 0.5 + rng.Float64()*10
			total += demands[i]
		}
		capacity := rng.Float64() * total
		x := Waterfill(capacity, demands)
		if i, bad := MaxMinViolation(x, demands, capOracle(capacity), 1e-6); bad {
			t.Fatalf("trial %d: waterfill flagged at %d", trial, i)
		}
		// Perturb: move mass from a below-demand job to another; must flag.
		from, to := -1, -1
		for i := range x {
			if x[i] > 0.2 {
				from = i
				break
			}
		}
		for i := range x {
			if i != from && x[i] < demands[i]-0.2 {
				to = i
				break
			}
		}
		if from >= 0 && to >= 0 {
			y := append([]float64(nil), x...)
			y[from] -= 0.1
			y[to] += 0.1
			// y[from] now sits below its max-min share; it must be raisable.
			if _, bad := MaxMinViolation(y, demands, capOracle(capacity), 1e-6); !bad {
				t.Fatalf("trial %d: perturbed vector not flagged (x=%v y=%v)", trial, x, y)
			}
		}
	}
}

func TestLexLess(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 2, 3}, []float64{2, 2, 3}, true},
		{[]float64{2, 2, 3}, []float64{1, 2, 3}, false},
		{[]float64{1, 2, 3}, []float64{3, 2, 1}, false}, // equal after sorting
		{[]float64{1, 5, 5}, []float64{2, 2, 2}, true},  // min decides
		{[]float64{2, 2, 9}, []float64{2, 3, 3}, true},  // second element decides
	}
	for i, c := range cases {
		if got := LexLess(c.a, c.b, 1e-9); got != c.want {
			t.Fatalf("case %d: LexLess(%v,%v)=%v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{1, 1, 1, 1}); !feq(j, 1) {
		t.Fatalf("equal vector Jain=%g, want 1", j)
	}
	if j := JainIndex([]float64{1, 0, 0, 0}); !feq(j, 0.25) {
		t.Fatalf("degenerate vector Jain=%g, want 0.25", j)
	}
	if j := JainIndex(nil); j != 1 {
		t.Fatalf("empty Jain=%g, want 1", j)
	}
	if j := JainIndex([]float64{0, 0}); j != 1 {
		t.Fatalf("zero Jain=%g, want 1", j)
	}
	// Jain index is scale invariant.
	a := []float64{1, 2, 3, 4}
	b := []float64{10, 20, 30, 40}
	if !feq(JainIndex(a), JainIndex(b)) {
		t.Fatal("Jain index not scale invariant")
	}
}

func TestMinMaxRatio(t *testing.T) {
	if r := MinMaxRatio([]float64{2, 4}); !feq(r, 0.5) {
		t.Fatalf("ratio %g, want 0.5", r)
	}
	if r := MinMaxRatio([]float64{3, 3, 3}); !feq(r, 1) {
		t.Fatalf("ratio %g, want 1", r)
	}
	if r := MinMaxRatio(nil); r != 1 {
		t.Fatalf("empty ratio %g, want 1", r)
	}
	if r := MinMaxRatio([]float64{0, 0}); r != 1 {
		t.Fatalf("zero ratio %g, want 1", r)
	}
	if r := MinMaxRatio([]float64{0, 5}); r != 0 {
		t.Fatalf("ratio %g, want 0", r)
	}
}

func TestNormalizedShares(t *testing.T) {
	got := NormalizedShares([]float64{2, 6}, []float64{1, 3})
	if !feq(got[0], 2) || !feq(got[1], 2) {
		t.Fatalf("got %v, want [2 2]", got)
	}
}

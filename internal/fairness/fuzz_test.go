package fairness

import (
	"math"
	"testing"
)

// FuzzWaterfill checks water-filling invariants on arbitrary inputs:
// no negative shares, demand caps respected, capacity respected, and
// Pareto efficiency (capacity or all demands exhausted).
func FuzzWaterfill(f *testing.F) {
	f.Add(10.0, 2.0, 4.0, 10.0, 7.0)
	f.Add(0.0, 1.0, 1.0, 1.0, 1.0)
	f.Add(5.0, -1.0, 3.0, 0.0, 2.5)
	f.Add(1e12, 1e-9, 5.0, 2.0, 1e9)
	f.Fuzz(func(t *testing.T, capacity, d0, d1, d2, d3 float64) {
		if !finiteAll(capacity, d0, d1, d2, d3) {
			t.Skip()
		}
		if math.Abs(capacity) > 1e15 || math.Abs(d0) > 1e15 ||
			math.Abs(d1) > 1e15 || math.Abs(d2) > 1e15 || math.Abs(d3) > 1e15 {
			t.Skip()
		}
		demands := []float64{d0, d1, d2, d3}
		got := Waterfill(capacity, demands)
		var used, total float64
		for i, a := range got {
			d := math.Max(demands[i], 0)
			if a < 0 {
				t.Fatalf("negative share %g", a)
			}
			if a > d*(1+1e-9)+1e-12 {
				t.Fatalf("share %g exceeds demand %g", a, d)
			}
			used += a
			total += d
		}
		capPos := math.Max(capacity, 0)
		if used > capPos*(1+1e-9)+1e-9 {
			t.Fatalf("used %g exceeds capacity %g", used, capacity)
		}
		want := math.Min(capPos, total)
		if used < want-1e-6*(1+want) {
			t.Fatalf("not Pareto efficient: used %g of %g", used, want)
		}
	})
}

func finiteAll(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Package fairness provides single-pool max-min fair allocation
// (water-filling), generic max-min fairness certificates over feasibility
// oracles, and fairness metrics. The AMF allocator in internal/core builds
// on these primitives; the per-site max-min baseline from the paper is a
// direct application of Waterfill at every site.
package fairness

import (
	"math"
	"sort"
)

// Waterfill computes the (unweighted) max-min fair division of capacity
// among demands: every demand is either fully satisfied or receives the
// common water level. The returned slice is parallel to demands.
//
// Negative demands are treated as zero. If total demand does not exceed
// capacity, every demand is fully satisfied.
func Waterfill(capacity float64, demands []float64) []float64 {
	weights := make([]float64, len(demands))
	for i := range weights {
		weights[i] = 1
	}
	return WeightedWaterfill(capacity, demands, weights)
}

// WeightedWaterfill computes the weighted max-min fair division: job i
// receives min(d_i, t*w_i) where t is the largest level exhausting capacity
// (or satisfying all demands). A job with weight <= 0 receives nothing.
func WeightedWaterfill(capacity float64, demands, weights []float64) []float64 {
	n := len(demands)
	if len(weights) != n {
		panic("fairness: demands and weights length mismatch")
	}
	out := make([]float64, n)
	if capacity <= 0 || n == 0 {
		return out
	}

	// Jobs sorted by saturation level d_i/w_i; fill until capacity runs out.
	type item struct {
		idx   int
		level float64 // d/w, the water level at which this job saturates
	}
	items := make([]item, 0, n)
	var active float64 // sum of weights of unsaturated jobs
	for i := 0; i < n; i++ {
		d := math.Max(demands[i], 0)
		w := weights[i]
		if w <= 0 || d == 0 {
			continue
		}
		items = append(items, item{idx: i, level: d / w})
		active += w
	}
	sort.Slice(items, func(a, b int) bool { return items[a].level < items[b].level })

	remaining := capacity
	level := 0.0
	k := 0
	for k < len(items) {
		it := items[k]
		// Raising the level from `level` to it.level costs (it.level-level)*active.
		cost := (it.level - level) * active
		if cost > remaining {
			break
		}
		remaining -= cost
		level = it.level
		// Saturate this job (and any others at the same level on later
		// loop iterations).
		out[it.idx] = math.Max(demands[it.idx], 0)
		active -= weights[it.idx]
		k++
	}
	if k < len(items) && active > 0 {
		level += remaining / active
		for ; k < len(items); k++ {
			it := items[k]
			out[it.idx] = math.Min(math.Max(demands[it.idx], 0), level*weights[it.idx])
		}
	}
	return out
}

// WaterLevel returns the water level of the unweighted max-min fair division
// of capacity among demands: the common allocation received by every
// unsatisfied demand. If all demands are satisfied it returns the maximum
// demand.
func WaterLevel(capacity float64, demands []float64) float64 {
	alloc := Waterfill(capacity, demands)
	level := 0.0
	saturatedMax := 0.0
	anyUnsat := false
	for i, a := range alloc {
		d := math.Max(demands[i], 0)
		if a < d-1e-12*(1+d) {
			anyUnsat = true
			if a > level {
				level = a
			}
		}
		if d > saturatedMax {
			saturatedMax = d
		}
	}
	if !anyUnsat {
		return saturatedMax
	}
	return level
}

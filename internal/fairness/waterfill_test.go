package fairness

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func feq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestWaterfillAllSatisfied(t *testing.T) {
	got := Waterfill(10, []float64{1, 2, 3})
	want := []float64{1, 2, 3}
	for i := range want {
		if !feq(got[i], want[i]) {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestWaterfillEqualSplit(t *testing.T) {
	got := Waterfill(9, []float64{10, 10, 10})
	for i, v := range got {
		if !feq(v, 3) {
			t.Fatalf("element %d = %g, want 3 (got %v)", i, v, got)
		}
	}
}

func TestWaterfillMixed(t *testing.T) {
	// Classic example: capacity 10, demands 2, 4, 10 -> 2, 4, 4.
	got := Waterfill(10, []float64{2, 4, 10})
	want := []float64{2, 4, 4}
	for i := range want {
		if !feq(got[i], want[i]) {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestWaterfillSmallDemandFirst(t *testing.T) {
	// capacity 6, demands 1, 8, 8 -> 1, 2.5, 2.5
	got := Waterfill(6, []float64{1, 8, 8})
	want := []float64{1, 2.5, 2.5}
	for i := range want {
		if !feq(got[i], want[i]) {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestWaterfillZeroCapacity(t *testing.T) {
	got := Waterfill(0, []float64{1, 2})
	for _, v := range got {
		if v != 0 {
			t.Fatalf("got %v, want zeros", got)
		}
	}
}

func TestWaterfillNegativeDemandTreatedAsZero(t *testing.T) {
	got := Waterfill(4, []float64{-3, 2, 9})
	if got[0] != 0 {
		t.Fatalf("negative demand received %g", got[0])
	}
	if !feq(got[1], 2) || !feq(got[2], 2) {
		t.Fatalf("got %v, want [0 2 2]", got)
	}
}

func TestWaterfillEmpty(t *testing.T) {
	if got := Waterfill(5, nil); len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestWeightedWaterfillProportional(t *testing.T) {
	// Large demands: allocation proportional to weights.
	got := WeightedWaterfill(6, []float64{100, 100, 100}, []float64{1, 2, 3})
	want := []float64{1, 2, 3}
	for i := range want {
		if !feq(got[i], want[i]) {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestWeightedWaterfillSaturation(t *testing.T) {
	// Job 0 saturates at 0.5 (level 0.5); remaining 5.5 split 2:3 by weight.
	got := WeightedWaterfill(6, []float64{0.5, 100, 100}, []float64{1, 2, 3})
	if !feq(got[0], 0.5) {
		t.Fatalf("job 0 got %g, want 0.5", got[0])
	}
	if !feq(got[1], 2.2) || !feq(got[2], 3.3) {
		t.Fatalf("got %v, want [0.5 2.2 3.3]", got)
	}
}

func TestWeightedWaterfillZeroWeight(t *testing.T) {
	got := WeightedWaterfill(6, []float64{5, 5}, []float64{0, 1})
	if got[0] != 0 {
		t.Fatalf("zero-weight job received %g", got[0])
	}
	if !feq(got[1], 5) {
		t.Fatalf("job 1 got %g, want 5", got[1])
	}
}

func TestWaterfillEqualLevelsTieBreak(t *testing.T) {
	got := Waterfill(4, []float64{2, 2, 2})
	for _, v := range got {
		if !feq(v, 4.0/3) {
			t.Fatalf("got %v, want all 4/3", got)
		}
	}
}

func TestWaterLevel(t *testing.T) {
	if l := WaterLevel(10, []float64{2, 4, 10}); !feq(l, 4) {
		t.Fatalf("level %g, want 4", l)
	}
	if l := WaterLevel(100, []float64{2, 4, 10}); !feq(l, 10) {
		t.Fatalf("level %g, want 10 (all satisfied -> max demand)", l)
	}
}

// Property tests ----------------------------------------------------------

func TestWaterfillProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		demands := make([]float64, n)
		var total float64
		for i := range demands {
			demands[i] = rng.Float64() * 10
			total += demands[i]
		}
		capacity := rng.Float64() * total * 1.5
		got := Waterfill(capacity, demands)

		var used float64
		for i, a := range got {
			if a < -1e-12 {
				t.Fatalf("negative allocation %g", a)
			}
			if a > demands[i]+1e-9 {
				t.Fatalf("allocation %g exceeds demand %g", a, demands[i])
			}
			used += a
		}
		if used > capacity+1e-9*(1+capacity) {
			t.Fatalf("over-allocated: %g > %g", used, capacity)
		}
		// Pareto efficiency: either everyone is satisfied or the capacity is
		// fully used.
		allSat := true
		for i := range got {
			if got[i] < demands[i]-1e-9 {
				allSat = false
			}
		}
		if !allSat && !feq(used, math.Min(capacity, total)) {
			t.Fatalf("capacity not exhausted: used %g of %g", used, capacity)
		}
		// Max-min structure: all unsaturated jobs sit at a common level >=
		// every saturated demand... (saturated demands are <= the level).
		level := -1.0
		for i := range got {
			if got[i] < demands[i]-1e-9 {
				if level < 0 {
					level = got[i]
				} else if !feq(level, got[i]) {
					t.Fatalf("unsaturated jobs at different levels: %g vs %g", level, got[i])
				}
			}
		}
		if level >= 0 {
			for i := range got {
				if feq(got[i], demands[i]) && demands[i] > level+1e-9 {
					t.Fatalf("job %d saturated at %g above water level %g", i, demands[i], level)
				}
			}
		}
	}
}

func TestWeightedWaterfillQuickConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		demands := make([]float64, n)
		weights := make([]float64, n)
		var total float64
		for i := range demands {
			demands[i] = rng.Float64() * 20
			weights[i] = 0.1 + rng.Float64()*5
			total += demands[i]
		}
		capacity := rng.Float64() * total
		got := WeightedWaterfill(capacity, demands, weights)
		var used float64
		for i := range got {
			if got[i] < -1e-12 || got[i] > demands[i]+1e-9 {
				return false
			}
			used += got[i]
		}
		return used <= capacity+1e-9*(1+capacity) &&
			used >= math.Min(capacity, total)-1e-9*(1+capacity)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWeightedWaterfillNormalizedLevels(t *testing.T) {
	// Weighted max-min: unsaturated jobs share a common normalized level.
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		demands := make([]float64, n)
		weights := make([]float64, n)
		var total float64
		for i := range demands {
			demands[i] = rng.Float64() * 10
			weights[i] = 0.5 + rng.Float64()*3
			total += demands[i]
		}
		capacity := rng.Float64() * total
		got := WeightedWaterfill(capacity, demands, weights)
		level := -1.0
		for i := range got {
			if got[i] < demands[i]-1e-9 {
				norm := got[i] / weights[i]
				if level < 0 {
					level = norm
				} else if !feq(level, norm) {
					t.Fatalf("normalized levels differ: %g vs %g", level, norm)
				}
			}
		}
	}
}

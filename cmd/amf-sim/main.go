// Command amf-sim runs the online multi-site simulators.
//
// Usage:
//
//	amf-sim [-mode fluid|slots] [-policy psmmf|amf|amf+jct|amf-enhanced|all]
//	        [-jobs 100] [-sites 6] [-capacity 4] [-load 0.8] [-skew 1.2]
//	        [-tasks 6] [-task-duration 1] [-spread 3] [-seed 2019]
//	        [-records out.csv] [-plot]
//
// A Poisson job stream is generated (arrival rate derived from -load), run
// through the selected simulator under each requested policy, and per-policy
// JCT/utilization statistics are printed. -records dumps per-job records as
// CSV (last policy run); -plot adds an ASCII CDF plot of completion times.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		mode     = flag.String("mode", "fluid", "simulator: fluid or slots")
		policy   = flag.String("policy", "all", "policy or 'all'")
		jobs     = flag.Int("jobs", 100, "number of jobs")
		sites    = flag.Int("sites", 6, "number of sites")
		capacity = flag.Float64("capacity", 4, "per-site capacity (slots)")
		load     = flag.Float64("load", 0.8, "offered load rho")
		skew     = flag.Float64("skew", 1.2, "Zipf skew of task placement")
		tasks    = flag.Float64("tasks", 6, "mean tasks per job")
		taskDur  = flag.Float64("task-duration", 1, "mean task duration")
		spread   = flag.Int("spread", 3, "max distinct sites per job")
		diurnal  = flag.Float64("diurnal", 0, "diurnal arrival-rate amplitude in [0,1)")
		seed     = flag.Uint64("seed", 2019, "random seed")
		records  = flag.String("records", "", "write per-job records CSV (last policy)")
		plot     = flag.Bool("plot", false, "ASCII CDF plot of completion times")
		inTrace  = flag.String("trace", "", "replay a job stream from this CSV instead of generating one")
		outTrace = flag.String("save-trace", "", "write the generated job stream to this CSV")
	)
	flag.Parse()
	if err := run(*mode, *policy, *jobs, *sites, *capacity, *load, *skew,
		*tasks, *taskDur, *spread, *diurnal, *seed, *records, *plot, *inTrace, *outTrace); err != nil {
		fmt.Fprintln(os.Stderr, "amf-sim:", err)
		os.Exit(1)
	}
}

func run(mode, policy string, jobs, sites int, capacity, load, skew,
	tasks, taskDur float64, spread int, diurnal float64, seed uint64,
	records string, plot bool, inTrace, outTrace string) error {

	var stream []workload.Job
	if inTrace != "" {
		f, err := os.Open(inTrace)
		if err != nil {
			return err
		}
		stream, err = trace.ReadJobStreamCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		// The trace defines the cluster shape.
		if need := trace.NumSitesOf(stream); need > 0 {
			sites = need
		}
		jobs = len(stream)
	} else {
		cfg := workload.StreamConfig{
			NumSites:         sites,
			NumJobs:          jobs,
			Skew:             skew,
			PerJobSkew:       true,
			TasksPerJobMean:  tasks,
			TaskDurationMean: taskDur,
			SitesPerJobMax:   spread,
			DiurnalAmplitude: diurnal,
			Seed:             seed,
		}
		cfg.Lambda = workload.LambdaForLoad(cfg, capacity*float64(sites), load)
		stream = workload.GenerateStream(cfg)
	}
	if outTrace != "" {
		f, err := os.Create(outTrace)
		if err != nil {
			return err
		}
		err = trace.WriteJobStreamCSV(f, stream)
		f.Close()
		if err != nil {
			return err
		}
	}

	var policies []sim.Policy
	if policy == "all" {
		policies = sim.Policies()
	} else {
		p, err := sim.ParsePolicy(policy)
		if err != nil {
			return err
		}
		policies = []sim.Policy{p}
	}

	caps := make([]float64, sites)
	slots := make([]int, sites)
	for s := range caps {
		caps[s] = capacity
		slots[s] = int(capacity)
	}
	solver := &core.Solver{SkipJCTRefine: true}

	t := table.New(fmt.Sprintf("Simulation (%s, %d jobs, load %.2g)", mode, jobs, load),
		"policy", "mean JCT", "p50", "p95", "p99", "utilization", "fairness", "makespan")
	var lastJobs []sim.JobRecord
	perPolicyJCT := map[string][]float64{}
	for _, p := range policies {
		var recs []sim.JobRecord
		var util, makespan float64
		fairness := "-"
		switch mode {
		case "fluid":
			res, err := sim.RunFluid(sim.FluidConfig{
				SiteCapacity: caps, Policy: p, Solver: solver,
			}, stream)
			if err != nil {
				return fmt.Errorf("%s: %w", p, err)
			}
			recs, util, makespan = res.Jobs, res.Utilization, res.Makespan
			fairness = fmt.Sprintf("%.4g", res.FairnessAvg)
		case "slots":
			res, err := sim.RunSlots(sim.SlotConfig{
				SlotsPerSite: slots, Policy: p, Solver: solver,
			}, stream)
			if err != nil {
				return fmt.Errorf("%s: %w", p, err)
			}
			recs, util, makespan = res.Jobs, res.Utilization, res.Makespan
		default:
			return fmt.Errorf("unknown mode %q", mode)
		}
		jcts := sim.JCTs(recs)
		t.AddRow(p.String(), stats.Mean(jcts), stats.Percentile(jcts, 50),
			stats.Percentile(jcts, 95), stats.Percentile(jcts, 99), util, fairness, makespan)
		lastJobs = recs
		perPolicyJCT[p.String()] = jcts
	}
	fmt.Print(t.Render())

	if plot {
		// JCT quantile curves, one series per policy, on a shared
		// fraction axis.
		const levels = 20
		names := make([]string, 0, len(policies))
		for _, p := range policies {
			names = append(names, p.String())
		}
		s := table.NewSeries("JCT at CDF fraction", "fraction", names...)
		for i := 1; i <= levels; i++ {
			frac := float64(i) / levels
			ys := make([]float64, len(names))
			for k, name := range names {
				ys[k] = stats.Percentile(perPolicyJCT[name], frac*100)
			}
			s.AddPoint(frac, ys...)
		}
		fmt.Println()
		fmt.Print(s.AsciiPlot(60, 14))
	}

	if records != "" {
		f, err := os.Create(records)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteJobRecordsCSV(f, lastJobs); err != nil {
			return err
		}
	}
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// largegraphOptions configures the large-graph approximation sweep
// (-largegraph): exact vs approximate water-filling over a ladder of
// single-component bipartite graphs growing to ~10^6 demand edges.
type largegraphOptions struct {
	tiers   string  // "jobs:sites:degree" triples, comma separated ("" = default ladder)
	epsilon float64 // deviation budget as a fraction of instance scale
	trials  int     // timed approximate solves per tier (median kept)
	seed    uint64
	out     string // JSON results path ("" = skip)
}

// defaultLargegraphTiers grows edge count ~4x per tier while keeping the
// job count (which drives the exact path's freeze-round count, and with
// it the exact baseline's runtime) in the minutes-at-worst regime.
const defaultLargegraphTiers = "1000:64:16,2000:256:32,4000:512:64,10000:1024:100"

// largegraphTier is one rung of the sweep in the machine-readable output.
type largegraphTier struct {
	Jobs   int `json:"jobs"`
	Sites  int `json:"sites"`
	Degree int `json:"degree"`
	Edges  int `json:"edges"`
	// ExactNS is a single timed exact solve (the baseline is far too slow
	// to repeat at the large tiers); ApproxNS is the median of -largegraph-trials.
	ExactNS  int64   `json:"exact_ns"`
	ApproxNS int64   `json:"approx_ns"`
	Speedup  float64 `json:"speedup"`
	// MaxDeviation is the measured max per-job |aggregate_exact -
	// aggregate_approx|; Budget is epsilon * instance scale, the bound the
	// solver certifies; ErrorBound is the solver's own reported bound.
	MaxDeviation float64 `json:"max_deviation"`
	Budget       float64 `json:"budget"`
	ErrorBound   float64 `json:"error_bound"`
}

// largegraphResult is the record written to -largegraph-out
// (BENCH_largegraph.json in CI).
type largegraphResult struct {
	Benchmark string           `json:"benchmark"`
	Env       benchEnv         `json:"env"`
	Epsilon   float64          `json:"epsilon"`
	Seed      uint64           `json:"seed"`
	Tiers     []largegraphTier `json:"tiers"`
}

func parseLargegraphTiers(s string) ([][3]int, error) {
	var tiers [][3]int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("tier %q: want jobs:sites:degree", part)
		}
		var t [3]int
		for i, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("tier %q: bad field %q", part, f)
			}
			t[i] = v
		}
		tiers = append(tiers, t)
	}
	if len(tiers) == 0 {
		return nil, fmt.Errorf("no tiers in %q", s)
	}
	return tiers, nil
}

// runLargegraph sweeps the tier ladder: per tier, one timed exact solve,
// trials timed approximate solves (median), and the measured max per-job
// deviation against the epsilon budget.
func runLargegraph(o largegraphOptions) error {
	if o.epsilon <= 0 || math.IsNaN(o.epsilon) || math.IsInf(o.epsilon, 0) {
		return fmt.Errorf("-largegraph-epsilon must be a positive finite fraction, got %g", o.epsilon)
	}
	if o.trials <= 0 {
		o.trials = 3
	}
	if o.tiers == "" {
		o.tiers = defaultLargegraphTiers
	}
	tiers, err := parseLargegraphTiers(o.tiers)
	if err != nil {
		return err
	}
	seed := o.seed
	if seed == 0 {
		seed = 2019
	}

	res := largegraphResult{
		Benchmark: "largegraph_approx",
		Env:       captureEnv(),
		Epsilon:   o.epsilon,
		Seed:      seed,
	}
	fmt.Printf("Large-graph approximation sweep: epsilon %g, %d approx trials per tier, GOMAXPROCS=%d\n\n",
		o.epsilon, o.trials, res.Env.GOMAXPROCS)
	fmt.Printf("%8s %6s %7s %9s %12s %12s %9s %12s %12s\n",
		"jobs", "sites", "degree", "edges", "exact", "approx", "speedup", "maxdev", "budget")

	for ti, t := range tiers {
		jobs, sites, degree := t[0], t[1], t[2]
		in := workload.GenerateLargeGraph(workload.LargeGraphConfig{
			Jobs:   jobs,
			Sites:  sites,
			Degree: degree,
			Seed:   seed + uint64(ti),
		})
		edges := 0
		for _, row := range in.Demand {
			for _, d := range row {
				if d > 0 {
					edges++
				}
			}
		}

		exact := core.NewSolver()
		start := time.Now()
		want, err := exact.AMF(in)
		if err != nil {
			return fmt.Errorf("tier %d exact: %w", ti, err)
		}
		exactNS := time.Since(start).Nanoseconds()

		approx := &core.Solver{ApproxEpsilon: o.epsilon, ApproxThreshold: 1}
		var got *core.Allocation
		samples := make([]int64, 0, o.trials)
		for k := 0; k < o.trials; k++ {
			start = time.Now()
			got, err = approx.AMF(in)
			if err != nil {
				return fmt.Errorf("tier %d approx: %w", ti, err)
			}
			samples = append(samples, time.Since(start).Nanoseconds())
		}
		approxNS := medianNS(samples)

		var maxdev float64
		for j := 0; j < in.NumJobs(); j++ {
			if dev := math.Abs(got.Aggregate(j) - want.Aggregate(j)); dev > maxdev {
				maxdev = dev
			}
		}
		tier := largegraphTier{
			Jobs: jobs, Sites: sites, Degree: degree, Edges: edges,
			ExactNS:      exactNS,
			ApproxNS:     approxNS,
			Speedup:      float64(exactNS) / float64(approxNS),
			MaxDeviation: maxdev,
			Budget:       o.epsilon * in.Scale(),
			ErrorBound:   approx.LastStats().ApproxErrorBound,
		}
		res.Tiers = append(res.Tiers, tier)
		fmt.Printf("%8d %6d %7d %9d %12v %12v %8.1fx %12.4g %12.4g\n",
			jobs, sites, degree, edges,
			time.Duration(exactNS).Round(time.Millisecond),
			time.Duration(approxNS).Round(time.Millisecond),
			tier.Speedup, maxdev, tier.Budget)
		if maxdev > tier.Budget {
			return fmt.Errorf("tier %d: deviation %g exceeds budget %g", ti, maxdev, tier.Budget)
		}
	}

	if o.out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", o.out)
	}
	return nil
}

func medianNS(samples []int64) int64 {
	s := append([]int64(nil), samples...)
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k] < s[k-1]; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
	return s[len(s)/2]
}

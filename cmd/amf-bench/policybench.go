package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/policy"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/workload"
)

// policyBenchOptions parameterizes the policy comparison benchmark
// (-policybench): replay the SAME zipf-skewed churn stream through one
// serving engine per fairness policy and compare per-commit latency and
// cache behaviour across disciplines.
type policyBenchOptions struct {
	components int
	jobs       int // per component
	sites      int // per component
	mutations  int
	zipf       float64
	seed       uint64
	policies   string // comma-separated subset ("" = all registered)
	out        string // JSON results path ("" = skip)
}

// policyBenchRow is one policy's measurement in the -policybench-out
// JSON file (BENCH_policy.json in CI).
type policyBenchRow struct {
	Policy         string  `json:"policy"`
	Incremental    bool    `json:"incremental"`
	MedianCommitNS int64   `json:"median_commit_ns"`
	P99CommitNS    int64   `json:"p99_commit_ns"`
	LastReused     int     `json:"last_reused"`
	LastResolved   int     `json:"last_resolved"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
}

// policyBenchResult is the machine-readable record for the whole sweep.
type policyBenchResult struct {
	Benchmark         string           `json:"benchmark"`
	Env               benchEnv         `json:"env"`
	Components        int              `json:"components"`
	JobsPerComponent  int              `json:"jobs_per_component"`
	SitesPerComponent int              `json:"sites_per_component"`
	Mutations         int              `json:"mutations"`
	ZipfSkew          float64          `json:"zipf_skew"`
	GOMAXPROCS        int              `json:"gomaxprocs"`
	Policies          []policyBenchRow `json:"policies"`
}

// runPolicyBench replays one generated churn stream through each
// requested policy, prints a comparison table, and optionally writes the
// JSON record.
func runPolicyBench(o policyBenchOptions) error {
	names := policy.Names()
	if o.policies != "" {
		names = nil
		for _, n := range strings.Split(o.policies, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}

	ch := workload.GenerateChurn(workload.ChurnConfig{
		Sparse: workload.SparseConfig{
			Components:        o.components,
			JobsPerComponent:  o.jobs,
			SitesPerComponent: o.sites,
			Seed:              o.seed,
		},
		Mutations: o.mutations,
		Seed:      o.seed + 1,
		ZipfSkew:  o.zipf,
	})

	res := policyBenchResult{
		Benchmark:         "policy_churn",
		Env:               captureEnv(),
		Components:        o.components,
		JobsPerComponent:  o.jobs,
		SitesPerComponent: o.sites,
		Mutations:         o.mutations,
		ZipfSkew:          o.zipf,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
	}

	fmt.Printf("Policy benchmark: %d components x %d jobs x %d sites, %d mutations (zipf %.2f), GOMAXPROCS=%d\n\n",
		o.components, o.jobs, o.sites, o.mutations, o.zipf, res.GOMAXPROCS)
	fmt.Printf("%-14s %14s %14s %12s\n", "policy", "median commit", "p99 commit", "cache hit%")

	for _, name := range names {
		pol, err := policy.ForName(name)
		if err != nil {
			return err
		}
		row, err := policyBenchPass(ch, pol)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		res.Policies = append(res.Policies, row)
		hit := "-"
		if row.CacheHits+row.CacheMisses > 0 {
			hit = fmt.Sprintf("%.1f%%", 100*row.CacheHitRatio)
		}
		fmt.Printf("%-14s %14v %14v %12s\n", name,
			time.Duration(row.MedianCommitNS).Round(time.Microsecond),
			time.Duration(row.P99CommitNS).Round(time.Microsecond), hit)
	}

	if o.out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", o.out)
	}
	return nil
}

// policyBenchPass replays the stream through an unbatched engine running
// the given policy (one commit per mutation) and collects the latency
// distribution plus the controller's final cache stats.
func policyBenchPass(ch *workload.Churn, pol policy.Policy) (policyBenchRow, error) {
	sc, err := scheduler.New(scheduler.Config{
		SiteCapacity: ch.Inst.SiteCapacity,
		Policy:       pol,
	})
	if err != nil {
		return policyBenchRow{}, err
	}
	if err := ch.Populate(sc); err != nil {
		return policyBenchRow{}, err
	}
	eng, err := serve.New(sc, serve.Config{MaxBatch: 1})
	if err != nil {
		return policyBenchRow{}, err
	}
	defer eng.Close()

	target := engineTarget{eng: eng}
	times := make([]int64, 0, len(ch.Ops))
	for _, op := range ch.Ops {
		start := time.Now()
		err := op.Apply(target)
		if err != nil && !errors.Is(err, scheduler.ErrUnknownJob) && !errors.Is(err, scheduler.ErrDuplicateJob) {
			return policyBenchRow{}, err
		}
		times = append(times, time.Since(start).Nanoseconds())
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	st := sc.Stats()
	row := policyBenchRow{
		Policy:         pol.Name(),
		Incremental:    pol.Capabilities().Incremental,
		MedianCommitNS: times[len(times)/2],
		P99CommitNS:    times[len(times)*99/100],
		LastReused:     st.LastReused,
		LastResolved:   st.LastResolved,
		CacheHits:      st.CacheHits,
		CacheMisses:    st.CacheMisses,
	}
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		row.CacheHitRatio = float64(st.CacheHits) / float64(total)
	}
	return row, nil
}

package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/workload"
)

// obsOptions parameterizes the observability-overhead benchmark (-obs):
// replay the same mutation stream through the serving engine with
// observability off (no metrics registry, no tracing) and fully on
// (shared registry + commit tracing), and report the per-commit latency
// overhead plus the recorded traces' span coverage.
type obsOptions struct {
	components int
	jobs       int // per component
	sites      int // per component
	mutations  int
	reps       int
	seed       uint64
	out        string // JSON results path ("" = skip)
	cpuprofile string // CPU profile of the instrumented pass ("" = skip)
}

// obsResult is the machine-readable record written to the -obs-out JSON
// file (BENCH_obs.json in CI).
type obsResult struct {
	Benchmark         string   `json:"benchmark"`
	Env               benchEnv `json:"env"`
	Components        int      `json:"components"`
	JobsPerComponent  int      `json:"jobs_per_component"`
	SitesPerComponent int      `json:"sites_per_component"`
	Mutations         int      `json:"mutations"`
	Reps              int      `json:"reps"`
	GOMAXPROCS        int      `json:"gomaxprocs"`
	// Median acknowledged commit latency per configuration (best median
	// across reps, to shed scheduler noise).
	PlainMedianNS int64 `json:"plain_median_ns"`
	ObsMedianNS   int64 `json:"obs_median_ns"`
	// OverheadPct is (obs - plain) / plain × 100: the full observability
	// stack's per-commit cost. The acceptance bound is < 3%.
	OverheadPct float64 `json:"overhead_pct"`
	// Span coverage of the recorded traces: mean and minimum ratio of
	// summed non-detail span time to whole-commit wall time. The
	// acceptance bound is within 10% of 1.
	SpanSumRatioMean float64 `json:"span_sum_ratio_mean"`
	SpanSumRatioMin  float64 `json:"span_sum_ratio_min"`
	TracesRecorded   int     `json:"traces_recorded"`
}

// runObsBench measures the observability overhead and optionally writes
// the JSON record and a CPU profile of the instrumented pass.
func runObsBench(o obsOptions) error {
	if o.reps <= 0 {
		o.reps = 3
	}
	ch := workload.GenerateChurn(workload.ChurnConfig{
		Sparse: workload.SparseConfig{
			Components:        o.components,
			JobsPerComponent:  o.jobs,
			SitesPerComponent: o.sites,
			Seed:              o.seed,
		},
		Mutations: o.mutations,
		Seed:      o.seed + 1,
	})

	var plainBest, obsBest int64
	var lastTraces []*span.Trace
	// Run the two configurations in alternating order across reps (heap
	// and GC state drift over a process's life, so a fixed order would
	// systematically bias whichever pass runs later) and keep each
	// configuration's best median.
	for rep := 0; rep < o.reps; rep++ {
		profile := ""
		if rep == o.reps-1 {
			profile = o.cpuprofile
		}
		runOne := func(instrumented bool) error {
			prof := ""
			if instrumented {
				prof = profile
			}
			ns, traces, err := obsPass(ch, instrumented, prof)
			if err != nil {
				return err
			}
			if instrumented {
				if obsBest == 0 || ns < obsBest {
					obsBest = ns
				}
				lastTraces = traces
			} else if plainBest == 0 || ns < plainBest {
				plainBest = ns
			}
			return nil
		}
		first, second := false, true
		if rep%2 == 1 {
			first, second = true, false
		}
		if err := runOne(first); err != nil {
			return err
		}
		if err := runOne(second); err != nil {
			return err
		}
	}

	res := obsResult{
		Benchmark:         "observability_overhead",
		Env:               captureEnv(),
		Components:        o.components,
		JobsPerComponent:  o.jobs,
		SitesPerComponent: o.sites,
		Mutations:         o.mutations,
		Reps:              o.reps,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		PlainMedianNS:     plainBest,
		ObsMedianNS:       obsBest,
		OverheadPct:       100 * (float64(obsBest) - float64(plainBest)) / float64(plainBest),
		TracesRecorded:    len(lastTraces),
	}
	res.SpanSumRatioMean, res.SpanSumRatioMin = spanCoverage(lastTraces)

	fmt.Printf("Observability benchmark: %d components x %d jobs x %d sites, %d mutations, %d reps, GOMAXPROCS=%d\n\n",
		o.components, o.jobs, o.sites, o.mutations, o.reps, res.GOMAXPROCS)
	fmt.Printf("%-24s %20s\n", "configuration", "median commit")
	fmt.Printf("%-24s %20v\n", "plain", time.Duration(plainBest).Round(time.Microsecond))
	fmt.Printf("%-24s %20v\n", "metrics+tracing", time.Duration(obsBest).Round(time.Microsecond))
	fmt.Printf("\noverhead: %+.2f%%  (bound < 3%%)\n", res.OverheadPct)
	fmt.Printf("span coverage: mean %.3f, min %.3f over %d traces  (bound: within 10%% of 1)\n",
		res.SpanSumRatioMean, res.SpanSumRatioMin, res.TracesRecorded)

	if o.out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.out)
	}
	return nil
}

// obsPass replays the stream through an unbatched engine (one commit per
// mutation) with observability off or fully on, returning the median
// acknowledged mutation latency and (when instrumented) the recorded
// traces. A non-empty cpuprofile captures the instrumented replay.
func obsPass(ch *workload.Churn, instrumented bool, cpuprofile string) (int64, []*span.Trace, error) {
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: ch.Inst.SiteCapacity})
	if err != nil {
		return 0, nil, err
	}
	if err := ch.Populate(sc); err != nil {
		return 0, nil, err
	}
	cfg := serve.Config{MaxBatch: 1}
	var rec *span.Recorder
	if instrumented {
		rec = span.NewRecorder(4096)
		cfg.Metrics = obs.NewRegistry()
		cfg.Traces = rec
		// The slow-trace retention ring is part of the default stack now;
		// its insert cost belongs in the measured overhead.
		cfg.SlowTraces = span.NewSlowRecorder(32, time.Hour)
	}
	eng, err := serve.New(sc, cfg)
	if err != nil {
		return 0, nil, err
	}
	defer eng.Close()

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return 0, nil, err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return 0, nil, err
		}
		defer pprof.StopCPUProfile()
	}

	target := engineTarget{eng: eng}
	times := make([]int64, 0, len(ch.Ops))
	for _, op := range ch.Ops {
		start := time.Now()
		err := op.Apply(target)
		if err != nil && !errors.Is(err, scheduler.ErrUnknownJob) && !errors.Is(err, scheduler.ErrDuplicateJob) {
			return 0, nil, err
		}
		times = append(times, time.Since(start).Nanoseconds())
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	var traces []*span.Trace
	if rec != nil {
		traces = rec.Recent(0)
	}
	return times[len(times)/2], traces, nil
}

// spanCoverage reports the mean and minimum SpanSum/Total ratio across
// traces (1, 1 for an empty set).
func spanCoverage(traces []*span.Trace) (mean, minR float64) {
	if len(traces) == 0 {
		return 1, 1
	}
	minR = 2
	var sum float64
	for _, t := range traces {
		r := 1.0
		if t.Total > 0 {
			r = t.SpanSum() / t.Total
		}
		sum += r
		if r < minR {
			minR = r
		}
	}
	return sum / float64(len(traces)), minR
}

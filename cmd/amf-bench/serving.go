package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/serve"
)

// servingOptions parameterizes the serving-throughput benchmark
// (-serve): N mutator goroutines push weight updates through the engine
// while M reader goroutines poll the allocation snapshot, once with
// group-committed batching and once with one solve per mutation.
type servingOptions struct {
	mutators int
	readers  int
	jobs     int
	sites    int
	batchMax int
	window   time.Duration
	dur      time.Duration
}

// readPollInterval is each benchmark reader's polling cadence.
const readPollInterval = 250 * time.Microsecond

type servingResult struct {
	mode      string
	mutOps    int64
	readOps   int64
	solves    int
	elapsed   time.Duration
	solveP95  float64
	commitP95 float64
}

func (r servingResult) mutPerSec() float64 {
	return float64(r.mutOps) / r.elapsed.Seconds()
}

func (r servingResult) readPerSec() float64 {
	return float64(r.readOps) / r.elapsed.Seconds()
}

// runServing runs the batched and unbatched configurations and prints a
// comparison table.
func runServing(o servingOptions) error {
	if o.batchMax <= 0 {
		// Group-commit sweet spot: a batch the size of the writer pool
		// commits the moment every in-flight mutation has arrived, so the
		// window below is a bound, not a wait.
		o.batchMax = o.mutators
	}
	unbatched, err := runServingMode("unbatched", 1, o)
	if err != nil {
		return err
	}
	batched, err := runServingMode("batched", o.batchMax, o)
	if err != nil {
		return err
	}
	fmt.Printf("Serving throughput: %d mutators + %d readers, %d jobs x %d sites, %v per mode\n\n",
		o.mutators, o.readers, o.jobs, o.sites, o.dur)
	fmt.Printf("%-10s %12s %14s %8s %14s %14s\n",
		"mode", "mutations/s", "reads/s", "solves", "solve p95 (s)", "commit p95 (s)")
	for _, r := range []servingResult{unbatched, batched} {
		fmt.Printf("%-10s %12.0f %14.0f %8d %14.6f %14.6f\n",
			r.mode, r.mutPerSec(), r.readPerSec(), r.solves, r.solveP95, r.commitP95)
	}
	fmt.Printf("\nbatched/unbatched mutation throughput: %.2fx\n",
		batched.mutPerSec()/unbatched.mutPerSec())
	return nil
}

func runServingMode(mode string, batchMax int, o servingOptions) (servingResult, error) {
	caps := make([]float64, o.sites)
	for s := range caps {
		caps[s] = float64(o.jobs) / float64(o.sites)
	}
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: caps})
	if err != nil {
		return servingResult{}, err
	}
	reg := obs.NewRegistry()
	eng, err := serve.New(sc, serve.Config{
		MaxBatch:    batchMax,
		BatchWindow: o.window,
		Metrics:     reg,
	})
	if err != nil {
		return servingResult{}, err
	}
	defer eng.Close()

	// Preload a steady-state job set: each job demands work at two sites.
	for j := 0; j < o.jobs; j++ {
		demand := make([]float64, o.sites)
		demand[j%o.sites] = 2
		demand[(j+1)%o.sites] = 1
		if err := eng.AddJob(context.Background(), fmt.Sprintf("job-%d", j), 1, demand, nil); err != nil {
			return servingResult{}, err
		}
	}
	baseSolves := sc.Stats().Solves

	var stop atomic.Bool
	var mutOps, readOps atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < o.mutators; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				id := fmt.Sprintf("job-%d", (w+i*o.mutators)%o.jobs)
				// Cycle weights so every update dirties the allocation.
				weight := 1 + float64((i*7+w*3)%13)/13
				if err := eng.UpdateWeight(context.Background(), id, weight); err != nil {
					return
				}
				mutOps.Add(1)
			}
		}(w)
	}
	for r := 0; r < o.readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for !stop.Load() {
				snap := eng.Current()
				if snap.Version < last {
					panic("snapshot version went backwards")
				}
				last = snap.Version
				readOps.Add(1)
				// Poll like a monitoring client rather than hot-spinning,
				// so readers don't monopolize small hosts. The snapshot
				// read itself is a single atomic load.
				time.Sleep(readPollInterval)
			}
		}()
	}
	start := time.Now()
	time.Sleep(o.dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	return servingResult{
		mode:      mode,
		mutOps:    mutOps.Load(),
		readOps:   readOps.Load(),
		solves:    sc.Stats().Solves - baseSolves,
		elapsed:   elapsed,
		solveP95:  reg.Histogram("engine.solve_latency").Quantile(0.95),
		commitP95: reg.Histogram("engine.commit_latency").Quantile(0.95),
	}, nil
}

package main

import "runtime"

// benchEnv is the host fingerprint embedded in every machine-readable
// BENCH_*.json so committed results can be compared across machines and
// toolchain upgrades without guessing at the recording environment.
type benchEnv struct {
	// GOMAXPROCS is the scheduler's parallelism limit at bench time —
	// what the solver's worker pools actually got to use.
	GOMAXPROCS int `json:"gomaxprocs"`
	// NumCPU is the machine's logical CPU count, which can exceed
	// GOMAXPROCS under cgroup or taskset confinement.
	NumCPU int `json:"num_cpu"`
	// GoVersion is the toolchain that built the benchmark binary.
	GoVersion string `json:"go_version"`
}

// captureEnv snapshots the environment header for a benchmark result.
func captureEnv() benchEnv {
	return benchEnv{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
}

package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/workload"
)

// churnOptions parameterizes the incremental-solve churn benchmark
// (-churn): drive the same component-local mutation stream through an
// unbatched serving engine with and without incremental re-solving, and
// report the per-commit latency ratio.
type churnOptions struct {
	components int
	jobs       int // per component
	sites      int // per component
	mutations  int
	zipf       float64 // component-selection skew (0 = uniform)
	seed       uint64
	out        string // JSON results path ("" = skip)
}

// churnResult is the machine-readable record written to the -churn-out
// JSON file (BENCH_incremental.json in CI).
type churnResult struct {
	Benchmark           string   `json:"benchmark"`
	Env                 benchEnv `json:"env"`
	Components          int      `json:"components"`
	JobsPerComponent    int      `json:"jobs_per_component"`
	SitesPerComponent   int      `json:"sites_per_component"`
	Mutations           int      `json:"mutations"`
	ZipfSkew            float64  `json:"zipf_skew"`
	GOMAXPROCS          int      `json:"gomaxprocs"`
	IncrementalMedianNS int64    `json:"incremental_median_ns"`
	FullMedianNS        int64    `json:"full_median_ns"`
	Ratio               float64  `json:"full_over_incremental"`
	LastReused          int      `json:"last_reused"`
	LastResolved        int      `json:"last_resolved"`
	CacheHits           int64    `json:"cache_hits"`
	CacheMisses         int64    `json:"cache_misses"`
	CacheHitRatio       float64  `json:"cache_hit_ratio"`
	GlobalInvalidations int64    `json:"global_invalidations"`
}

// runChurn replays one generated churn stream through both scheduler
// configurations, prints a comparison, and optionally writes the JSON
// record.
func runChurn(o churnOptions) error {
	ch := workload.GenerateChurn(workload.ChurnConfig{
		Sparse: workload.SparseConfig{
			Components:        o.components,
			JobsPerComponent:  o.jobs,
			SitesPerComponent: o.sites,
			Seed:              o.seed,
		},
		Mutations: o.mutations,
		Seed:      o.seed + 1,
		ZipfSkew:  o.zipf,
	})

	incNS, incStats, err := churnPass(ch, false)
	if err != nil {
		return err
	}
	fullNS, _, err := churnPass(ch, true)
	if err != nil {
		return err
	}

	res := churnResult{
		Benchmark:           "incremental_churn",
		Env:                 captureEnv(),
		Components:          o.components,
		JobsPerComponent:    o.jobs,
		SitesPerComponent:   o.sites,
		Mutations:           o.mutations,
		ZipfSkew:            o.zipf,
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		IncrementalMedianNS: incNS,
		FullMedianNS:        fullNS,
		Ratio:               float64(fullNS) / float64(incNS),
		LastReused:          incStats.LastReused,
		LastResolved:        incStats.LastResolved,
		CacheHits:           incStats.CacheHits,
		CacheMisses:         incStats.CacheMisses,
		GlobalInvalidations: incStats.GlobalInvalidations,
	}
	if total := incStats.CacheHits + incStats.CacheMisses; total > 0 {
		res.CacheHitRatio = float64(incStats.CacheHits) / float64(total)
	}

	fmt.Printf("Churn benchmark: %d components x %d jobs x %d sites, %d single-component mutations (zipf %.2f), GOMAXPROCS=%d\n\n",
		o.components, o.jobs, o.sites, o.mutations, o.zipf, res.GOMAXPROCS)
	fmt.Printf("%-14s %20s\n", "path", "median commit")
	fmt.Printf("%-14s %20v\n", "full resolve", time.Duration(fullNS).Round(time.Microsecond))
	fmt.Printf("%-14s %20v\n", "incremental", time.Duration(incNS).Round(time.Microsecond))
	fmt.Printf("\nfull/incremental: %.2fx  (last solve: %d reused, %d re-solved; cache %d hits / %d misses)\n",
		res.Ratio, res.LastReused, res.LastResolved, res.CacheHits, res.CacheMisses)

	if o.out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.out)
	}
	return nil
}

// engineTarget adapts the context-aware engine to the ctx-less churn
// replay interface; the bench has no cancellation story.
type engineTarget struct{ eng *serve.Engine }

func (t engineTarget) AddJob(id string, weight float64, demand, work []float64) error {
	return t.eng.AddJob(context.Background(), id, weight, demand, work)
}

func (t engineTarget) RemoveJob(id string) error {
	return t.eng.RemoveJob(context.Background(), id)
}

func (t engineTarget) UpdateWeight(id string, weight float64) error {
	return t.eng.UpdateWeight(context.Background(), id, weight)
}

func (t engineTarget) ReportProgress(id string, done []float64) (bool, error) {
	return t.eng.ReportProgress(context.Background(), id, done)
}

// churnPass replays the stream through an unbatched engine (one commit
// per mutation) and returns the median commit latency plus the final
// scheduler stats.
func churnPass(ch *workload.Churn, disableIncremental bool) (int64, scheduler.Stats, error) {
	sc, err := scheduler.New(scheduler.Config{
		SiteCapacity:       ch.Inst.SiteCapacity,
		DisableIncremental: disableIncremental,
	})
	if err != nil {
		return 0, scheduler.Stats{}, err
	}
	// Populate before the engine starts: adds stay lazy, and the engine's
	// initial publish performs the single warm-up solve.
	if err := ch.Populate(sc); err != nil {
		return 0, scheduler.Stats{}, err
	}
	eng, err := serve.New(sc, serve.Config{MaxBatch: 1})
	if err != nil {
		return 0, scheduler.Stats{}, err
	}
	defer eng.Close()

	target := engineTarget{eng: eng}
	times := make([]int64, 0, len(ch.Ops))
	for _, op := range ch.Ops {
		start := time.Now()
		err := op.Apply(target)
		if err != nil && !errors.Is(err, scheduler.ErrUnknownJob) && !errors.Is(err, scheduler.ErrDuplicateJob) {
			return 0, scheduler.Stats{}, err
		}
		times = append(times, time.Since(start).Nanoseconds())
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	return times[len(times)/2], sc.Stats(), nil
}

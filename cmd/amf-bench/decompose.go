package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// decomposeOptions parameterizes the decomposition benchmark
// (-decompose): solve the same block-diagonal sparse instance with the
// monolithic single-network path and with the component-decomposed
// parallel path, and report the ratio.
type decomposeOptions struct {
	components int
	jobs       int // per component
	sites      int // per component
	trials     int
	seed       uint64
	out        string // JSON results path ("" = skip)
}

// decomposeResult is the machine-readable benchmark record written to
// the -decompose-out JSON file (BENCH_solver.json in CI).
type decomposeResult struct {
	Benchmark         string   `json:"benchmark"`
	Env               benchEnv `json:"env"`
	Components        int      `json:"components"`
	JobsPerComponent  int      `json:"jobs_per_component"`
	SitesPerComponent int      `json:"sites_per_component"`
	Trials            int      `json:"trials"`
	GOMAXPROCS        int      `json:"gomaxprocs"`
	MonoMedianNS      int64    `json:"mono_median_ns"`
	DecompMedianNS    int64    `json:"decomposed_median_ns"`
	Ratio             float64  `json:"mono_over_decomposed"`
	SolvedComponents  int      `json:"solved_components"`
	LargestComponent  int      `json:"largest_component"`
	ParallelSpeedup   float64  `json:"parallel_speedup"`
}

// runDecompose times both solver paths over the same warm solver per
// mode, prints a comparison, and optionally writes the JSON record.
func runDecompose(o decomposeOptions) error {
	in := workload.GenerateSparse(workload.SparseConfig{
		Components:        o.components,
		JobsPerComponent:  o.jobs,
		SitesPerComponent: o.sites,
		Seed:              o.seed,
	})
	mono := &core.Solver{SkipJCTRefine: true, Monolithic: true}
	dec := &core.Solver{SkipJCTRefine: true}

	monoNS, err := timeSolves(mono, in, o.trials)
	if err != nil {
		return err
	}
	decNS, err := timeSolves(dec, in, o.trials)
	if err != nil {
		return err
	}
	st := dec.LastStats()

	res := decomposeResult{
		Benchmark:         "decompose",
		Env:               captureEnv(),
		Components:        o.components,
		JobsPerComponent:  o.jobs,
		SitesPerComponent: o.sites,
		Trials:            o.trials,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		MonoMedianNS:      monoNS,
		DecompMedianNS:    decNS,
		Ratio:             float64(monoNS) / float64(decNS),
		SolvedComponents:  st.Components,
		LargestComponent:  st.LargestComponent,
		ParallelSpeedup:   st.Speedup,
	}

	fmt.Printf("Decomposition benchmark: %d components x %d jobs x %d sites, %d trials, GOMAXPROCS=%d\n\n",
		o.components, o.jobs, o.sites, o.trials, res.GOMAXPROCS)
	fmt.Printf("%-12s %16s\n", "path", "median solve")
	fmt.Printf("%-12s %16v\n", "monolithic", time.Duration(monoNS).Round(time.Microsecond))
	fmt.Printf("%-12s %16v\n", "decomposed", time.Duration(decNS).Round(time.Microsecond))
	fmt.Printf("\nmono/decomposed: %.2fx  (components=%d largest=%d parallel speedup=%.2fx)\n",
		res.Ratio, st.Components, st.LargestComponent, st.Speedup)

	if o.out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.out)
	}
	return nil
}

// timeSolves returns the median wall time of trials AMF solves on a warm
// solver (one untimed warm-up populates the scratch pool first).
func timeSolves(sv *core.Solver, in *core.Instance, trials int) (int64, error) {
	if _, err := sv.AMF(in); err != nil {
		return 0, err
	}
	times := make([]int64, 0, trials)
	for i := 0; i < trials; i++ {
		start := time.Now()
		if _, err := sv.AMF(in); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start).Nanoseconds())
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	return times[len(times)/2], nil
}

package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/policy"
	"repro/internal/wal"
	"repro/internal/workload"
)

// clusterOptions parameterizes the cluster read-scaling benchmark
// (-cluster): a WAL-durable primary under sustained churn writes ships
// its log to N read replicas, and each serving endpoint's HTTP read
// throughput is measured in isolation. Endpoints are measured one at a
// time — on a shared test box that is the only honest way to estimate
// per-machine serving capacity — and the aggregate assumes one endpoint
// per machine, which is how replicas deploy.
type clusterOptions struct {
	replicas   int
	readers    int // concurrent HTTP readers per endpoint
	components int
	jobs       int // per component
	sites      int // per component
	dur        time.Duration
	writeIval  time.Duration
	zipf       float64
	seed       uint64
	out        string // JSON results path ("" = skip)
}

// clusterEndpoint is one serving endpoint's measured read capacity.
type clusterEndpoint struct {
	Role           string  `json:"role"` // "primary" or "replica-<i>"
	ReadsPerSecond float64 `json:"reads_per_second"`
}

// clusterResult is the machine-readable record written to -cluster-out
// (BENCH_cluster.json in CI).
type clusterResult struct {
	Benchmark          string            `json:"benchmark"`
	Env                benchEnv          `json:"env"`
	Note               string            `json:"note"`
	GOMAXPROCS         int               `json:"gomaxprocs"`
	Components         int               `json:"components"`
	JobsPerComponent   int               `json:"jobs_per_component"`
	SitesPerComponent  int               `json:"sites_per_component"`
	ZipfSkew           float64           `json:"zipf_skew"`
	ReadersPerEndpoint int               `json:"readers_per_endpoint"`
	DurationSeconds    float64           `json:"duration_seconds_per_endpoint"`
	WriterIntervalMS   float64           `json:"writer_interval_ms"`
	WriterMutations    int64             `json:"writer_mutations"`
	Endpoints          []clusterEndpoint `json:"endpoints"`
	SingleEngineRPS    float64           `json:"single_engine_rps"`
	AggregateRPS       float64           `json:"aggregate_rps"`
	ScalingVsSingle    float64           `json:"scaling_vs_single"`
	MaxLagBytes        float64           `json:"max_replica_lag_bytes"`
	MaxLagSegments     float64           `json:"max_replica_lag_segments"`
	MaxStalenessMS     float64           `json:"max_replica_staleness_ms"`
	FinalCatchupMS     float64           `json:"final_catchup_ms"`
	ReplicaPollMS      float64           `json:"replica_poll_ms"`
}

// runClusterBench builds a primary + N replicas over real loopback HTTP,
// keeps a churn writer running against the primary for the whole run,
// measures each endpoint's saturated read throughput, and verifies the
// replicas converge to the primary's exact allocation afterwards.
func runClusterBench(o clusterOptions) error {
	const pollIval = 5 * time.Millisecond

	ch := workload.GenerateChurn(workload.ChurnConfig{
		Sparse: workload.SparseConfig{
			Components:        o.components,
			JobsPerComponent:  o.jobs,
			SitesPerComponent: o.sites,
			Seed:              o.seed,
		},
		Mutations: 4096,
		Seed:      o.seed + 1,
		ZipfSkew:  o.zipf,
	})
	caps := ch.Inst.SiteCapacity

	// Primary: WAL-durable engine behind the real API server.
	dir, err := os.MkdirTemp("", "amf-cluster-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	log, _, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{})
	if err != nil {
		return err
	}
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: policy.EnhancedAMF})
	if err != nil {
		return err
	}
	eng, err := serve.New(sc, serve.Config{Log: log, MaxBatch: 64})
	if err != nil {
		return err
	}
	defer eng.Close()
	// Populate through the engine so the base jobs land in the log —
	// that is what the replicas replay.
	if err := ch.Populate(engineTarget{eng: eng}); err != nil {
		return err
	}
	primarySrv := httptest.NewServer(api.NewEngineServer(eng, nil, caps, policy.EnhancedAMF).Handler())
	defer primarySrv.Close()
	shipSrv := httptest.NewServer(wal.NewShipHandler(log))
	defer shipSrv.Close()

	// Replicas: each tails the shipped WAL and serves the read-only API.
	reps := make([]*cluster.Replica, o.replicas)
	repSrvs := make([]*httptest.Server, o.replicas)
	for i := range reps {
		rep, err := cluster.NewReplica(cluster.ReplicaConfig{
			Source:       &wal.ShipClient{Base: shipSrv.URL, HTTP: shipSrv.Client()},
			SiteCapacity: caps,
			Policy:       policy.EnhancedAMF,
			Interval:     pollIval,
		})
		if err != nil {
			return err
		}
		defer rep.Close()
		reps[i] = rep
		repSrvs[i] = httptest.NewServer(api.NewBackendServer(rep, nil, caps, policy.EnhancedAMF).Handler())
		defer repSrvs[i].Close()
	}
	if err := waitReplicas(reps, log); err != nil {
		return err
	}

	// Sustained writer: replay the churn stream cyclically against the
	// primary until the whole measurement is over. Duplicate-add /
	// unknown-job errors are the documented cyclic-replay artifacts.
	var writerOps atomic.Int64
	writerStop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		target := engineTarget{eng: eng}
		for i := 0; ; i++ {
			select {
			case <-writerStop:
				return
			default:
			}
			err := ch.Ops[i%len(ch.Ops)].Apply(target)
			if err != nil && !errors.Is(err, scheduler.ErrUnknownJob) && !errors.Is(err, scheduler.ErrDuplicateJob) {
				return
			}
			writerOps.Add(1)
			time.Sleep(o.writeIval)
		}
	}()

	// Lag sampler: track the worst replica lag seen while writes flow,
	// measured directly as each replica's applied cursor against the
	// primary's durable head (the poll-updated gauges mostly read zero
	// because each 5ms poll drains the backlog).
	var maxLagBytes, maxLagSegments, maxStaleNS atomic.Int64
	samplerStop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-samplerStop:
				return
			case <-tick.C:
				head := log.Durable()
				for _, rep := range reps {
					v := rep.View()
					if v == nil || !v.Cursor.Before(head) {
						continue
					}
					if st := time.Since(v.AppliedAt).Nanoseconds(); st > maxStaleNS.Load() {
						maxStaleNS.Store(st)
					}
					if segs := int64(head.Segment - v.Cursor.Segment); segs > maxLagSegments.Load() {
						maxLagSegments.Store(segs)
					}
					lag := head.Offset
					if head.Segment == v.Cursor.Segment {
						lag -= v.Cursor.Offset
					}
					if lag > maxLagBytes.Load() {
						maxLagBytes.Store(lag)
					}
				}
			}
		}
	}()

	// Measure each endpoint in isolation (writer still running).
	endpoints := []clusterEndpoint{{Role: "primary"}}
	for i := range reps {
		endpoints = append(endpoints, clusterEndpoint{Role: fmt.Sprintf("replica-%d", i)})
	}
	for i, srv := range append([]*httptest.Server{primarySrv}, repSrvs...) {
		rps, err := measureReads(srv, o.readers, o.dur)
		if err != nil {
			return err
		}
		endpoints[i].ReadsPerSecond = rps
	}

	// Stop writes and time the final catch-up — the direct staleness
	// bound: how far behind a replica can be once the firehose stops.
	close(writerStop)
	writerWG.Wait()
	if err := log.Sync(); err != nil {
		return err
	}
	catchStart := time.Now()
	if err := waitReplicas(reps, log); err != nil {
		return err
	}
	catchup := time.Since(catchStart)
	close(samplerStop)
	samplerWG.Wait()

	// Convergence check: replicas must serve the primary's exact shares.
	want := eng.Current()
	for i, rep := range reps {
		v := rep.View()
		if len(v.Shares) != len(want.Shares) {
			return fmt.Errorf("replica %d diverged: %d jobs vs primary %d", i, len(v.Shares), len(want.Shares))
		}
	}

	res := clusterResult{
		Benchmark: "cluster_read_scaling",
		Env:       captureEnv(),
		Note: "per-endpoint read capacity measured in isolation on a shared box; " +
			"aggregate assumes one endpoint per machine (how replicas deploy)",
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		Components:         o.components,
		JobsPerComponent:   o.jobs,
		SitesPerComponent:  o.sites,
		ZipfSkew:           o.zipf,
		ReadersPerEndpoint: o.readers,
		DurationSeconds:    o.dur.Seconds(),
		WriterIntervalMS:   float64(o.writeIval) / float64(time.Millisecond),
		WriterMutations:    writerOps.Load(),
		Endpoints:          endpoints,
		SingleEngineRPS:    endpoints[0].ReadsPerSecond,
		MaxLagBytes:        float64(maxLagBytes.Load()),
		MaxLagSegments:     float64(maxLagSegments.Load()),
		MaxStalenessMS:     float64(maxStaleNS.Load()) / float64(time.Millisecond),
		FinalCatchupMS:     float64(catchup) / float64(time.Millisecond),
		ReplicaPollMS:      float64(pollIval) / float64(time.Millisecond),
	}
	for _, ep := range endpoints {
		res.AggregateRPS += ep.ReadsPerSecond
	}
	if res.SingleEngineRPS > 0 {
		res.ScalingVsSingle = res.AggregateRPS / res.SingleEngineRPS
	}

	fmt.Printf("Cluster read-scaling benchmark: %d replicas, %d readers/endpoint, %v/endpoint, writer every %v, zipf %.2f\n\n",
		o.replicas, o.readers, o.dur, o.writeIval, o.zipf)
	fmt.Printf("%-12s %16s\n", "endpoint", "reads/sec")
	for _, ep := range endpoints {
		fmt.Printf("%-12s %16.0f\n", ep.Role, ep.ReadsPerSecond)
	}
	fmt.Printf("\naggregate: %.0f reads/sec = %.2fx single engine (%d sustained writes during run)\n",
		res.AggregateRPS, res.ScalingVsSingle, res.WriterMutations)
	fmt.Printf("staleness: max %.1fms behind head (lag %d bytes / %d segments); final catch-up %.1fms at %.0fms poll\n",
		res.MaxStalenessMS, maxLagBytes.Load(), maxLagSegments.Load(), res.FinalCatchupMS, res.ReplicaPollMS)

	if o.out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.out)
	}
	return nil
}

// waitReplicas blocks until every replica has applied the log's durable
// head.
func waitReplicas(reps []*cluster.Replica, log *wal.Log) error {
	head := log.Durable()
	deadline := time.Now().Add(30 * time.Second)
	for _, rep := range reps {
		for {
			if v := rep.View(); v != nil && !v.Cursor.Before(head) {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("replica never caught up to %+v (last error: %s)", head, rep.LastError())
			}
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}

// measureReads saturates one endpoint with concurrent GET /v1/allocation
// readers for dur and returns the achieved reads/sec.
func measureReads(srv *httptest.Server, readers int, dur time.Duration) (float64, error) {
	cl := api.NewClient(srv.URL, srv.Client())
	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()
	var count atomic.Int64
	errCh := make(chan error, readers)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				if _, err := cl.Allocation(ctx); err != nil {
					if ctx.Err() == nil {
						errCh <- err
					}
					return
				}
				count.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, fmt.Errorf("reader: %w", err)
	default:
	}
	return float64(count.Load()) / elapsed.Seconds(), nil
}

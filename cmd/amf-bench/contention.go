package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/workload"
)

// contentionOptions parameterizes the phase-reconciliation benchmark
// (-contention): replay a skew-contended churn stream — component sizes
// and mutation popularity both Zipf, so one giant component absorbs most
// ops — through the engine's exact ordered path and through phase
// reconciliation, and compare per-commit acknowledged latency.
type contentionOptions struct {
	components   int
	jobs         int // total, zipf-split across components
	sites        int // per component
	mutations    int
	skew         float64
	hotThreshold float64
	out          string // JSON results path ("" = skip)
	seed         uint64
}

// contentionResult is the machine-readable record written to the
// -contention-out JSON file (BENCH_contention.json in CI).
type contentionResult struct {
	Benchmark         string   `json:"benchmark"`
	Env               benchEnv `json:"env"`
	Components        int      `json:"components"`
	Jobs              int      `json:"jobs"`
	SitesPerComponent int      `json:"sites_per_component"`
	Mutations         int      `json:"mutations"`
	Skew              float64  `json:"skew"`
	HotThreshold      float64  `json:"hot_threshold"`
	GOMAXPROCS        int      `json:"gomaxprocs"`
	ComponentSizes    []int    `json:"component_sizes"`
	// OrderedMedianNS is the exact per-op path (phase reconciliation off —
	// the pre-phase engine); PhaseMedianNS buffers commutative ops on hot
	// components and solves once per phase boundary.
	OrderedMedianNS int64   `json:"ordered_median_ns"`
	PhaseMedianNS   int64   `json:"phase_median_ns"`
	Ratio           float64 `json:"ordered_over_phase"`
	// Phase-path telemetry.
	Buffered            int64   `json:"phase_buffered_total"`
	Reconciles          int64   `json:"phase_reconciles_total"`
	ForcedReconciles    int64   `json:"phase_forced_reconciles_total"`
	CacheHitRatioWindow float64 `json:"cache_hit_ratio_window"`
	CacheHitRatio       float64 `json:"cache_hit_ratio"`
}

// runContention replays one generated contention stream through both
// engine configurations, prints a comparison, and optionally writes the
// JSON record.
func runContention(o contentionOptions) error {
	ch := workload.GenerateContention(workload.ContentionConfig{
		Components:        o.components,
		Jobs:              o.jobs,
		SitesPerComponent: o.sites,
		Mutations:         o.mutations,
		Skew:              o.skew,
		Seed:              o.seed,
	})

	orderedNS, _, err := contentionPass(ch, scheduler.PhaseConfig{})
	if err != nil {
		return err
	}
	phaseNS, tele, err := contentionPass(ch, scheduler.PhaseConfig{
		HotThreshold: o.hotThreshold,
	})
	if err != nil {
		return err
	}

	res := contentionResult{
		Benchmark:         "phase_contention",
		Env:               captureEnv(),
		Components:        o.components,
		Jobs:              o.jobs,
		SitesPerComponent: o.sites,
		Mutations:         o.mutations,
		Skew:              o.skew,
		HotThreshold:      o.hotThreshold,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		ComponentSizes:    ch.Sizes,
		OrderedMedianNS:   orderedNS,
		PhaseMedianNS:     phaseNS,
		Ratio:             float64(orderedNS) / float64(phaseNS),
		Buffered:          tele.buffered,
		Reconciles:        tele.reconciles,
		ForcedReconciles:  tele.forced,
		// The windowed companion gauge is the headline cache number: the
		// lifetime counter ratio underreports steady-state behaviour the
		// moment one policy switch or restore resets the solver (see
		// engine.cache_hit_ratio_window).
		CacheHitRatioWindow: tele.hitRatioWindow,
		CacheHitRatio:       tele.hitRatioLifetime,
	}

	fmt.Printf("Contention benchmark: %d jobs over %d components (sizes %v), %d mutations, skew %.2f, GOMAXPROCS=%d\n\n",
		o.jobs, o.components, ch.Sizes, o.mutations, o.skew, res.GOMAXPROCS)
	fmt.Printf("%-22s %20s\n", "path", "median commit")
	fmt.Printf("%-22s %20v\n", "ordered (exact)", time.Duration(orderedNS).Round(time.Microsecond))
	fmt.Printf("%-22s %20v\n", "phase-reconciled", time.Duration(phaseNS).Round(time.Microsecond))
	fmt.Printf("\nordered/phase: %.2fx  (%d ops buffered, %d reconciles, %d forced; windowed cache hit ratio %.3f)\n",
		res.Ratio, res.Buffered, res.Reconciles, res.ForcedReconciles, res.CacheHitRatioWindow)

	if o.out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.out)
	}
	return nil
}

// contentionTelemetry is what the phase pass reads back from the engine's
// metrics registry after the replay.
type contentionTelemetry struct {
	buffered         int64
	reconciles       int64
	forced           int64
	hitRatioWindow   float64
	hitRatioLifetime float64
}

// contentionPass replays the stream through an unbatched engine (one
// commit per acknowledged mutation) under the given phase config and
// returns the median acknowledged-commit latency plus phase telemetry.
func contentionPass(ch *workload.Contention, phase scheduler.PhaseConfig) (int64, contentionTelemetry, error) {
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: ch.Inst.SiteCapacity})
	if err != nil {
		return 0, contentionTelemetry{}, err
	}
	if err := sc.SetPhaseConfig(phase); err != nil {
		return 0, contentionTelemetry{}, err
	}
	if err := ch.Populate(sc); err != nil {
		return 0, contentionTelemetry{}, err
	}
	reg := obs.NewRegistry()
	eng, err := serve.New(sc, serve.Config{MaxBatch: 1, Metrics: reg})
	if err != nil {
		return 0, contentionTelemetry{}, err
	}
	defer eng.Close()

	target := engineTarget{eng: eng}
	times := make([]int64, 0, len(ch.Ops))
	for _, op := range ch.Ops {
		start := time.Now()
		err := op.Apply(target)
		if err != nil && !errors.Is(err, scheduler.ErrUnknownJob) && !errors.Is(err, scheduler.ErrDuplicateJob) {
			return 0, contentionTelemetry{}, err
		}
		times = append(times, time.Since(start).Nanoseconds())
	}
	// Drain outstanding deltas so the telemetry covers the whole stream.
	_ = eng.Snapshot()

	tele := contentionTelemetry{
		buffered:       reg.Counter("engine.phase_buffered_total").Value(),
		reconciles:     reg.Counter("engine.phase_reconciles_total").Value(),
		forced:         reg.Counter("engine.phase_forced_reconciles_total").Value(),
		hitRatioWindow: reg.Gauge("engine.cache_hit_ratio_window").Value(),
	}
	st := sc.Stats()
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		tele.hitRatioLifetime = float64(st.CacheHits) / float64(total)
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	return times[len(times)/2], tele, nil
}

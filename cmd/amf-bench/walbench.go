package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/wal"
)

// walbenchOptions parameterizes the durability-overhead benchmark (-wal):
// the same concurrent mutation workload runs through a batched engine
// once in-memory and once with a write-ahead log, and the acknowledged
// per-mutation latency is compared. Group commit is the whole point —
// every mutation in a batch shares one fsync, so the durable path should
// stay within a small constant factor of the in-memory one.
type walbenchOptions struct {
	mutators int
	jobs     int
	sites    int
	ops      int // mutations per mutator
	batchMax int
	window   time.Duration
	dir      string // WAL directory ("" = fresh temp dir)
	out      string // JSON results path ("" = skip)
}

// walbenchResult is the machine-readable record written to the -wal-out
// JSON file (BENCH_wal.json in CI).
type walbenchResult struct {
	Benchmark      string   `json:"benchmark"`
	Env            benchEnv `json:"env"`
	Mutators       int      `json:"mutators"`
	Jobs           int      `json:"jobs"`
	Sites          int      `json:"sites"`
	OpsPerMutator  int      `json:"ops_per_mutator"`
	BatchMax       int      `json:"batch_max"`
	GOMAXPROCS     int      `json:"gomaxprocs"`
	MemoryMedianNS int64    `json:"memory_median_ns"`
	MemoryP95NS    int64    `json:"memory_p95_ns"`
	WALMedianNS    int64    `json:"wal_median_ns"`
	WALP95NS       int64    `json:"wal_p95_ns"`
	Ratio          float64  `json:"wal_over_memory"`
	FsyncP95NS     int64    `json:"fsync_p95_ns"`
	AppendP95NS    int64    `json:"append_p95_ns"`
	Commits        int64    `json:"commits"`
	Compactions    int64    `json:"compactions"`
}

// runWALBench runs both configurations and prints the comparison.
func runWALBench(o walbenchOptions) error {
	if o.batchMax <= 0 {
		o.batchMax = o.mutators
	}
	memMed, memP95, _, err := walbenchPass(o, "")
	if err != nil {
		return err
	}
	dir := o.dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "amf-walbench-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	walMed, walP95, walReg, err := walbenchPass(o, dir)
	if err != nil {
		return err
	}

	res := walbenchResult{
		Benchmark:      "wal_overhead",
		Env:            captureEnv(),
		Mutators:       o.mutators,
		Jobs:           o.jobs,
		Sites:          o.sites,
		OpsPerMutator:  o.ops,
		BatchMax:       o.batchMax,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		MemoryMedianNS: memMed,
		MemoryP95NS:    memP95,
		WALMedianNS:    walMed,
		WALP95NS:       walP95,
		Ratio:          float64(walMed) / float64(memMed),
		FsyncP95NS:     int64(walReg.Histogram("wal.fsync_latency").Quantile(0.95) * 1e9),
		AppendP95NS:    int64(walReg.Histogram("wal.append_latency").Quantile(0.95) * 1e9),
		Commits:        walReg.Counter("engine.commits_total").Value(),
		Compactions:    walReg.Counter("wal.compactions_total").Value(),
	}

	fmt.Printf("WAL overhead: %d mutators x %d ops, %d jobs x %d sites, batch-max %d, GOMAXPROCS=%d\n\n",
		o.mutators, o.ops, o.jobs, o.sites, o.batchMax, res.GOMAXPROCS)
	fmt.Printf("%-10s %18s %18s\n", "mode", "ack median", "ack p95")
	fmt.Printf("%-10s %18v %18v\n", "in-memory",
		time.Duration(memMed).Round(time.Microsecond), time.Duration(memP95).Round(time.Microsecond))
	fmt.Printf("%-10s %18v %18v\n", "wal",
		time.Duration(walMed).Round(time.Microsecond), time.Duration(walP95).Round(time.Microsecond))
	fmt.Printf("\nwal/in-memory acknowledged latency: %.2fx  (fsync p95 %v, %d commits, %d compactions)\n",
		res.Ratio, time.Duration(res.FsyncP95NS).Round(time.Microsecond), res.Commits, res.Compactions)

	if o.out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.out)
	}
	return nil
}

// walbenchPass runs the workload through one engine configuration
// (durable iff dir != "") and returns the median and p95 acknowledged
// mutation latency plus the metrics registry for WAL telemetry.
func walbenchPass(o walbenchOptions, dir string) (int64, int64, *obs.Registry, error) {
	caps := make([]float64, o.sites)
	for s := range caps {
		caps[s] = float64(o.jobs) / float64(o.sites)
	}
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: caps})
	if err != nil {
		return 0, 0, nil, err
	}
	reg := obs.NewRegistry()
	cfg := serve.Config{MaxBatch: o.batchMax, BatchWindow: o.window, Metrics: reg}
	if dir != "" {
		l, _, err := wal.Open(dir, wal.Options{})
		if err != nil {
			return 0, 0, nil, err
		}
		cfg.Log = l
	}
	eng, err := serve.New(sc, cfg)
	if err != nil {
		return 0, 0, nil, err
	}
	defer eng.Close()

	for j := 0; j < o.jobs; j++ {
		demand := make([]float64, o.sites)
		demand[j%o.sites] = 2
		demand[(j+1)%o.sites] = 1
		if err := eng.AddJob(context.Background(), fmt.Sprintf("job-%d", j), 1, demand, nil); err != nil {
			return 0, 0, nil, err
		}
	}

	lat := make([][]int64, o.mutators)
	var wg sync.WaitGroup
	errs := make(chan error, o.mutators)
	for w := 0; w < o.mutators; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			times := make([]int64, 0, o.ops)
			for i := 0; i < o.ops; i++ {
				id := fmt.Sprintf("job-%d", (w+i*o.mutators)%o.jobs)
				weight := 1 + float64((i*7+w*3)%13)/13
				start := time.Now()
				if err := eng.UpdateWeight(context.Background(), id, weight); err != nil {
					errs <- err
					return
				}
				times = append(times, time.Since(start).Nanoseconds())
			}
			lat[w] = times
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return 0, 0, nil, err
	default:
	}

	var all []int64
	for _, times := range lat {
		all = append(all, times...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	return all[len(all)/2], all[len(all)*95/100], reg, nil
}

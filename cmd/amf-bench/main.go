// Command amf-bench regenerates the evaluation: every table and figure of
// the paper's experiment section (reconstructed as experiments E1-E10, see
// DESIGN.md).
//
// Usage:
//
//	amf-bench                 # run the full suite
//	amf-bench -run E1,E5      # run selected experiments
//	amf-bench -quick          # reduced sizes (smoke test)
//	amf-bench -seed 7         # different workload seed
//	amf-bench -list           # list experiment IDs and titles
//
// A separate serving-throughput mode benchmarks the concurrent engine
// (internal/serve) under mixed mutator/reader load, batched group commit
// vs. one solve per mutation:
//
//	amf-bench -serve                            # 8 mutators + 8 readers
//	amf-bench -serve -serve-mutators 16 -serve-dur 5s
//
// A decomposition mode compares the monolithic solve against the
// component-decomposed parallel path on a block-diagonal sparse
// instance, optionally emitting machine-readable results:
//
//	amf-bench -decompose
//	amf-bench -decompose -decompose-components 128 -decompose-out BENCH_solver.json
//
// A churn mode replays a component-local mutation stream through the
// serving engine with and without incremental re-solving and compares
// per-commit latency:
//
//	amf-bench -churn
//	amf-bench -churn -churn-mutations 2048 -churn-out BENCH_incremental.json
//	amf-bench -churn -zipf 1.2        # skew churn onto a few hot components
//
// A contention mode replays a zipf-contended churn stream — component
// sizes and mutation popularity both skewed, so one giant component
// absorbs most commits — through the exact ordered path and through
// Doppel-style phase reconciliation, comparing acknowledged per-commit
// latency:
//
//	amf-bench -contention
//	amf-bench -contention -contention-skew 1.2 -contention-out BENCH_contention.json
//
// A cluster mode measures read-throughput scaling with WAL-shipped read
// replicas: a durable primary under sustained churn ships its log to N
// replicas and each endpoint's saturated HTTP read rate is measured in
// isolation, along with the replicas' worst observed lag:
//
//	amf-bench -cluster
//	amf-bench -cluster -cluster-replicas 2 -cluster-out BENCH_cluster.json
//
// An observability mode replays the same mutation stream with the
// metrics/tracing stack off and fully on and reports the per-commit
// overhead plus the recorded traces' span coverage:
//
//	amf-bench -obs
//	amf-bench -obs -obs-out BENCH_obs.json -obs-cpuprofile obs.pprof
//
// A large-graph mode sweeps a ladder of single-component bipartite
// graphs growing to ~10^6 demand edges and compares the exact
// water-filling solve against the approximate fast path (ApproxEpsilon/
// ApproxThreshold), reporting per-tier speedup and the measured max
// per-job deviation against the epsilon budget:
//
//	amf-bench -largegraph
//	amf-bench -largegraph -largegraph-epsilon 0.01 -largegraph-out BENCH_largegraph.json
//	amf-bench -largegraph -largegraph-tiers 200:16:4,400:32:8   # smoke sizes
//
// A durability mode measures the acknowledged mutation latency of the
// write-ahead-logged engine against the in-memory engine under the same
// concurrent workload (group commit shares one fsync per batch):
//
//	amf-bench -wal
//	amf-bench -wal -wal-mutators 16 -wal-out BENCH_wal.json
//
// Output is the same Render() text the root-level benchmarks produce, so
// `go test -bench` and this tool can never drift apart.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		runIDs = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick  = flag.Bool("quick", false, "reduced sizes and trial counts")
		seed   = flag.Uint64("seed", 0, "workload seed (default 2019)")
		list   = flag.Bool("list", false, "list experiments and exit")
		format = flag.String("format", "text", "output format: text or md")
		outDir = flag.String("out", "", "also write each experiment's report into this directory")

		serveMode    = flag.Bool("serve", false, "run the serving-throughput benchmark instead of experiments")
		serveMut     = flag.Int("serve-mutators", 8, "concurrent mutator goroutines")
		serveReaders = flag.Int("serve-readers", 8, "concurrent reader goroutines")
		serveJobs    = flag.Int("serve-jobs", 64, "preloaded job count")
		serveSites   = flag.Int("serve-sites", 8, "site count")
		serveBatch   = flag.Int("serve-batch", 0, "MaxBatch for the batched configuration (0 = mutator count)")
		serveWindow  = flag.Duration("serve-window", time.Millisecond, "BatchWindow for the batched configuration")
		serveDur     = flag.Duration("serve-dur", 2*time.Second, "measurement duration per configuration")

		decompMode   = flag.Bool("decompose", false, "run the decomposition benchmark (monolithic vs component-parallel solve)")
		decompComps  = flag.Int("decompose-components", 64, "independent components in the sparse instance")
		decompJobs   = flag.Int("decompose-jobs", 16, "jobs per component")
		decompSites  = flag.Int("decompose-sites", 4, "sites per component")
		decompTrials = flag.Int("decompose-trials", 5, "timed solves per path (median reported)")
		decompOut    = flag.String("decompose-out", "", "write machine-readable results to this JSON file (e.g. BENCH_solver.json)")

		walMode     = flag.Bool("wal", false, "run the durability-overhead benchmark (acknowledged mutation latency, WAL vs in-memory)")
		walMutators = flag.Int("wal-mutators", 8, "concurrent mutator goroutines")
		walJobs     = flag.Int("wal-jobs", 256, "preloaded job count")
		walSites    = flag.Int("wal-sites", 16, "site count")
		walOps      = flag.Int("wal-ops", 100, "mutations per mutator")
		walBatch    = flag.Int("wal-batch", 0, "MaxBatch for both configurations (0 = mutator count)")
		walWindow   = flag.Duration("wal-window", time.Millisecond, "BatchWindow for both configurations")
		walDir      = flag.String("wal-dir", "", "WAL directory for the durable pass (default: fresh temp dir)")
		walOut      = flag.String("wal-out", "", "write machine-readable results to this JSON file (e.g. BENCH_wal.json)")

		contMode      = flag.Bool("contention", false, "run the phase-reconciliation benchmark (per-commit latency on zipf-contended churn, ordered vs phase-reconciled)")
		contComps     = flag.Int("contention-components", 8, "independent components (sizes zipf-split)")
		contJobs      = flag.Int("contention-jobs", 512, "total base jobs, split across components by the skew law")
		contSites     = flag.Int("contention-sites", 4, "sites per component")
		contMutations = flag.Int("contention-mutations", 4096, "mutations replayed per configuration")
		contSkew      = flag.Float64("contention-skew", 1.1, "Zipf exponent for component sizes and mutation popularity")
		contHot       = flag.Float64("contention-hot-threshold", 0.5, "phase classifier hot threshold for the phase-reconciled pass")
		contOut       = flag.String("contention-out", "", "write machine-readable results to this JSON file (e.g. BENCH_contention.json)")

		churnMode      = flag.Bool("churn", false, "run the incremental-churn benchmark (per-commit latency, incremental vs full re-solve)")
		churnComps     = flag.Int("churn-components", 64, "independent components in the sparse instance")
		churnJobs      = flag.Int("churn-jobs", 16, "jobs per component")
		churnSites     = flag.Int("churn-sites", 4, "sites per component")
		churnMutations = flag.Int("churn-mutations", 512, "single-component mutations replayed per configuration")
		churnOut       = flag.String("churn-out", "", "write machine-readable results to this JSON file (e.g. BENCH_incremental.json)")

		zipf = flag.Float64("zipf", 0, "Zipf skew for churn component selection: hit probability ∝ rank^(-s), 0 = uniform (used by -churn, -cluster, and -policybench)")

		polMode      = flag.Bool("policybench", false, "run the fairness-policy comparison benchmark (per-commit latency per policy over one churn stream)")
		polComps     = flag.Int("policybench-components", 16, "independent components in the churned instance")
		polJobs      = flag.Int("policybench-jobs", 4, "jobs per component")
		polSites     = flag.Int("policybench-sites", 3, "sites per component")
		polMutations = flag.Int("policybench-mutations", 256, "mutations replayed per policy")
		polNames     = flag.String("policybench-policies", "", "comma-separated policy subset (default: every registered policy)")
		polOut       = flag.String("policybench-out", "", "write machine-readable results to this JSON file (e.g. BENCH_policy.json)")

		clusterMode      = flag.Bool("cluster", false, "run the cluster read-scaling benchmark (primary + WAL-shipped read replicas)")
		clusterReplicas  = flag.Int("cluster-replicas", 2, "read replicas in the scaled configuration")
		clusterReaders   = flag.Int("cluster-readers", 4, "concurrent HTTP readers per endpoint")
		clusterComps     = flag.Int("cluster-components", 16, "independent components in the churned instance")
		clusterJobs      = flag.Int("cluster-jobs", 4, "jobs per component")
		clusterSites     = flag.Int("cluster-sites", 3, "sites per component")
		clusterDur       = flag.Duration("cluster-dur", 1500*time.Millisecond, "read measurement duration per endpoint")
		clusterWriteIval = flag.Duration("cluster-write-interval", 2*time.Millisecond, "pause between sustained writer mutations")
		clusterOut       = flag.String("cluster-out", "", "write machine-readable results to this JSON file (e.g. BENCH_cluster.json)")

		largeMode   = flag.Bool("largegraph", false, "run the large-graph approximation sweep (exact vs approximate water-filling)")
		largeTiers  = flag.String("largegraph-tiers", "", "jobs:sites:degree triples, comma separated (default: a ladder growing to ~10^6 edges)")
		largeEps    = flag.Float64("largegraph-epsilon", 0.01, "approximation deviation budget as a fraction of instance scale")
		largeTrials = flag.Int("largegraph-trials", 3, "timed approximate solves per tier (median reported; exact runs once)")
		largeOut    = flag.String("largegraph-out", "", "write machine-readable results to this JSON file (e.g. BENCH_largegraph.json)")

		obsMode      = flag.Bool("obs", false, "run the observability-overhead benchmark (per-commit latency, metrics+tracing vs plain)")
		obsComps     = flag.Int("obs-components", 64, "independent components in the sparse instance")
		obsJobs      = flag.Int("obs-jobs", 16, "jobs per component")
		obsSites     = flag.Int("obs-sites", 4, "sites per component")
		obsMutations = flag.Int("obs-mutations", 512, "mutations replayed per configuration")
		obsReps      = flag.Int("obs-reps", 3, "alternating repetitions per configuration (best median kept)")
		obsOut       = flag.String("obs-out", "", "write machine-readable results to this JSON file (e.g. BENCH_obs.json)")
		obsProfile   = flag.String("obs-cpuprofile", "", "write a CPU profile of the instrumented pass to this file")
	)
	flag.Parse()

	if *largeMode {
		if err := runLargegraph(largegraphOptions{
			tiers:   *largeTiers,
			epsilon: *largeEps,
			trials:  *largeTrials,
			seed:    *seed,
			out:     *largeOut,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "amf-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *clusterMode {
		if err := runClusterBench(clusterOptions{
			replicas:   *clusterReplicas,
			readers:    *clusterReaders,
			components: *clusterComps,
			jobs:       *clusterJobs,
			sites:      *clusterSites,
			dur:        *clusterDur,
			writeIval:  *clusterWriteIval,
			zipf:       *zipf,
			seed:       *seed,
			out:        *clusterOut,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "amf-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *obsMode {
		if err := runObsBench(obsOptions{
			components: *obsComps,
			jobs:       *obsJobs,
			sites:      *obsSites,
			mutations:  *obsMutations,
			reps:       *obsReps,
			seed:       *seed,
			out:        *obsOut,
			cpuprofile: *obsProfile,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "amf-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *walMode {
		if err := runWALBench(walbenchOptions{
			mutators: *walMutators,
			jobs:     *walJobs,
			sites:    *walSites,
			ops:      *walOps,
			batchMax: *walBatch,
			window:   *walWindow,
			dir:      *walDir,
			out:      *walOut,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "amf-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *polMode {
		if err := runPolicyBench(policyBenchOptions{
			components: *polComps,
			jobs:       *polJobs,
			sites:      *polSites,
			mutations:  *polMutations,
			zipf:       *zipf,
			seed:       *seed,
			policies:   *polNames,
			out:        *polOut,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "amf-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *contMode {
		if err := runContention(contentionOptions{
			components:   *contComps,
			jobs:         *contJobs,
			sites:        *contSites,
			mutations:    *contMutations,
			skew:         *contSkew,
			hotThreshold: *contHot,
			seed:         *seed,
			out:          *contOut,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "amf-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *churnMode {
		if err := runChurn(churnOptions{
			components: *churnComps,
			jobs:       *churnJobs,
			sites:      *churnSites,
			mutations:  *churnMutations,
			zipf:       *zipf,
			seed:       *seed,
			out:        *churnOut,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "amf-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *decompMode {
		if err := runDecompose(decomposeOptions{
			components: *decompComps,
			jobs:       *decompJobs,
			sites:      *decompSites,
			trials:     *decompTrials,
			seed:       *seed,
			out:        *decompOut,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "amf-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *serveMode {
		if err := runServing(servingOptions{
			mutators: *serveMut,
			readers:  *serveReaders,
			jobs:     *serveJobs,
			sites:    *serveSites,
			batchMax: *serveBatch,
			window:   *serveWindow,
			dur:      *serveDur,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "amf-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.List() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed}
	ids := experiments.IDs()
	if *runIDs != "" {
		ids = strings.Split(*runIDs, ",")
	}
	for _, id := range ids {
		start := time.Now()
		r, err := experiments.Run(strings.TrimSpace(id), opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amf-bench:", err)
			os.Exit(1)
		}
		var body, ext string
		switch *format {
		case "md":
			body, ext = r.RenderMarkdown(), "md"
			fmt.Print(body)
		default:
			body, ext = r.Render(), "txt"
			fmt.Print(body)
			fmt.Printf("(%s completed in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "amf-bench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, strings.ToLower(r.ID)+"."+ext)
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "amf-bench:", err)
				os.Exit(1)
			}
		}
	}
}

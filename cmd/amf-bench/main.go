// Command amf-bench regenerates the evaluation: every table and figure of
// the paper's experiment section (reconstructed as experiments E1-E10, see
// DESIGN.md).
//
// Usage:
//
//	amf-bench                 # run the full suite
//	amf-bench -run E1,E5      # run selected experiments
//	amf-bench -quick          # reduced sizes (smoke test)
//	amf-bench -seed 7         # different workload seed
//	amf-bench -list           # list experiment IDs and titles
//
// Output is the same Render() text the root-level benchmarks produce, so
// `go test -bench` and this tool can never drift apart.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		runIDs = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick  = flag.Bool("quick", false, "reduced sizes and trial counts")
		seed   = flag.Uint64("seed", 0, "workload seed (default 2019)")
		list   = flag.Bool("list", false, "list experiments and exit")
		format = flag.String("format", "text", "output format: text or md")
		outDir = flag.String("out", "", "also write each experiment's report into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.List() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed}
	ids := experiments.IDs()
	if *runIDs != "" {
		ids = strings.Split(*runIDs, ",")
	}
	for _, id := range ids {
		start := time.Now()
		r, err := experiments.Run(strings.TrimSpace(id), opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amf-bench:", err)
			os.Exit(1)
		}
		var body, ext string
		switch *format {
		case "md":
			body, ext = r.RenderMarkdown(), "md"
			fmt.Print(body)
		default:
			body, ext = r.Render(), "txt"
			fmt.Print(body)
			fmt.Printf("(%s completed in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "amf-bench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, strings.ToLower(r.ID)+"."+ext)
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "amf-bench:", err)
				os.Exit(1)
			}
		}
	}
}

// Command amf-gen generates synthetic instances for amf-solve.
//
// Usage:
//
//	amf-gen -jobs 100 -sites 20 -skew 1.5 [-per-job-skew] [-hetero]
//	        [-capacity 1] [-mean-demand 3] [-size uniform|exponential|bounded-pareto]
//	        [-scenario uniform|mild-skew|high-skew|hotspot|hetero]
//	        [-endowment -endowed 10 -shared 5 -poor 2]
//	        [-seed 2019] [-out instance.json]
//
// With -scenario, the named preset overrides the individual knobs. With
// -endowment, the sharing-incentive stress family is generated instead.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		jobs       = flag.Int("jobs", 100, "number of jobs")
		sites      = flag.Int("sites", 20, "number of sites")
		skew       = flag.Float64("skew", 1.0, "Zipf skew of the per-site workload distribution")
		perJobSkew = flag.Bool("per-job-skew", true, "skew each job onto its own hot sites rather than global hotspots")
		hetero     = flag.Bool("hetero", false, "heterogeneous site capacities")
		capacity   = flag.Float64("capacity", 1, "per-site capacity")
		meanDemand = flag.Float64("mean-demand", 0, "mean total demand per job (default: 3x fair share)")
		sizeDist   = flag.String("size", "bounded-pareto", "job size distribution: uniform, exponential, bounded-pareto")
		scenario   = flag.String("scenario", "", "named preset (uniform, mild-skew, high-skew, hotspot, hetero)")
		endowment  = flag.Bool("endowment", false, "generate the sharing-incentive stress family")
		endowed    = flag.Int("endowed", 10, "endowment: number of endowed jobs")
		shared     = flag.Int("shared", 5, "endowment: number of shared sites")
		poor       = flag.Int("poor", 2, "endowment: poor jobs per shared site")
		seed       = flag.Uint64("seed", 2019, "random seed")
		out        = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var in *core.Instance
	switch {
	case *endowment:
		in = workload.EndowmentInstance(workload.EndowmentConfig{
			NumEndowed:  *endowed,
			NumShared:   *shared,
			PoorPerSite: *poor,
			Jitter:      0.2,
			Seed:        *seed,
		})
	case *scenario != "":
		cfg, err := workload.Scenario(*scenario).Configure(*jobs, *sites, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amf-gen:", err)
			os.Exit(1)
		}
		in = workload.Generate(cfg)
	default:
		var dist workload.SizeDist
		switch *sizeDist {
		case "uniform":
			dist = workload.SizeUniform
		case "exponential":
			dist = workload.SizeExponential
		case "bounded-pareto":
			dist = workload.SizeBoundedPareto
		default:
			fmt.Fprintf(os.Stderr, "amf-gen: unknown size distribution %q\n", *sizeDist)
			os.Exit(1)
		}
		md := *meanDemand
		if md <= 0 {
			md = 3 * float64(*sites) * *capacity / float64(*jobs)
		}
		in = workload.Generate(workload.Config{
			NumJobs:        *jobs,
			NumSites:       *sites,
			SiteCapacity:   *capacity,
			HeteroCapacity: *hetero,
			Skew:           *skew,
			PerJobSkew:     *perJobSkew,
			MeanDemand:     md,
			SizeDist:       dist,
			Seed:           *seed,
		})
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amf-gen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteInstance(w, in); err != nil {
		fmt.Fprintln(os.Stderr, "amf-gen:", err)
		os.Exit(1)
	}
}

// Command amf-server runs the allocation controller as a standalone JSON/
// HTTP service (see internal/api for the endpoint reference).
//
// Usage:
//
//	amf-server -listen :8080 -capacity 4,4,8 -policy amf
//
// Example session:
//
//	curl -X POST localhost:8080/v1/jobs \
//	     -d '{"id":"etl","demand":[4,4,0],"work":[20,20,0]}'
//	curl localhost:8080/v1/allocation
//	curl -X POST localhost:8080/v1/jobs/etl/progress -d '{"done":[2,2,0]}'
//	curl localhost:8080/v1/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "listen address")
		capacity = flag.String("capacity", "4,4", "comma-separated per-site capacities")
		policy   = flag.String("policy", "amf", "allocation policy: psmmf, amf, amf+jct, amf-enhanced")
		state    = flag.String("state", "", "snapshot file: loaded at boot if present, saved on SIGINT/SIGTERM")
	)
	flag.Parse()

	caps, err := parseCapacities(*capacity)
	if err != nil {
		log.Fatalf("amf-server: %v", err)
	}
	p, err := sim.ParsePolicy(*policy)
	if err != nil {
		log.Fatalf("amf-server: %v", err)
	}
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: p})
	if err != nil {
		log.Fatalf("amf-server: %v", err)
	}
	if *state != "" {
		if err := loadState(sc, *state); err != nil {
			log.Fatalf("amf-server: %v", err)
		}
	}
	srv := api.NewServer(sc, caps, p)

	hs := &http.Server{
		Addr:              *listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if *state != "" {
		// Persist the job set on shutdown so a restart resumes where it
		// left off.
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigs
			if err := saveState(sc, *state); err != nil {
				log.Printf("amf-server: saving state: %v", err)
			} else {
				log.Printf("amf-server: state saved to %s", *state)
			}
			os.Exit(0)
		}()
	}
	log.Printf("amf-server: %d sites, policy %s, listening on %s", len(caps), p, *listen)
	if err := hs.ListenAndServe(); err != nil {
		log.Fatalf("amf-server: %v", err)
	}
}

func loadState(sc *scheduler.Scheduler, path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // first boot
		}
		return err
	}
	defer f.Close()
	if err := sc.ReadSnapshot(f); err != nil {
		return err
	}
	log.Printf("amf-server: restored %d jobs from %s", sc.Stats().Jobs, path)
	return nil
}

func saveState(sc *scheduler.Scheduler, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := sc.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func parseCapacities(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	caps := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad capacity %q: %w", part, err)
		}
		caps = append(caps, v)
	}
	return caps, nil
}

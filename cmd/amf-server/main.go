// Command amf-server runs the allocation controller as a standalone JSON/
// HTTP service (see internal/api for the endpoint reference).
//
// Requests are served through the concurrent engine (internal/serve):
// mutations are group-committed — many queued mutations share one
// re-solve — and allocation reads come lock-free from an immutable
// snapshot. -batch-max and -batch-window tune the batching; -batch-max 1
// restores one-solve-per-mutation behavior.
//
// With -data-dir the controller is durable: every committed batch is
// appended to a write-ahead log (internal/wal) and fsynced before it is
// acknowledged, the log is periodically folded into a state snapshot, and
// a restart — graceful or after a crash — replays the directory back to
// exactly the acknowledged state. -state remains as a lighter-weight
// alternative (snapshot on SIGTERM only; mutations between snapshot and
// crash are lost).
//
// Usage:
//
//	amf-server -listen :8080 -capacity 4,4,8 -policy amf
//	amf-server -data-dir /var/lib/amf -batch-max 256 -batch-window 2ms
//
// Example session:
//
//	curl -X POST localhost:8080/v1/jobs \
//	     -d '{"id":"etl","demand":[4,4,0],"work":[20,20,0]}'
//	curl localhost:8080/v1/allocation
//	curl -X POST localhost:8080/v1/jobs/etl/progress -d '{"done":[2,2,0]}'
//	curl localhost:8080/v1/stats
//	curl localhost:8080/v1/metrics
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/wal"
)

func main() {
	var (
		listen      = flag.String("listen", ":8080", "listen address")
		capacity    = flag.String("capacity", "4,4", "comma-separated per-site capacities")
		policy      = flag.String("policy", "amf", "allocation policy: psmmf, amf, amf+jct, amf-enhanced")
		state       = flag.String("state", "", "snapshot file: loaded at boot if present, saved on SIGINT/SIGTERM")
		dataDir     = flag.String("data-dir", "", "durable data directory: write-ahead log + snapshots, replayed on boot")
		batchMax    = flag.Int("batch-max", 256, "max mutations committed per solve (1 = solve per mutation)")
		batchWindow = flag.Duration("batch-window", 0, "extra time to gather a batch after its first mutation (0 = only drain what is queued)")
		compactMB   = flag.Int64("wal-compact-mb", 4, "fold the WAL into a snapshot once its record tail exceeds this many MiB")
		compactIval = flag.Duration("wal-compact-interval", time.Minute, "additionally compact the WAL this often (0 disables the timer)")
		dumpMetrics = flag.Bool("metrics-on-exit", true, "log a metrics snapshot on shutdown")
	)
	flag.Parse()

	caps, err := parseCapacities(*capacity)
	if err != nil {
		log.Fatalf("amf-server: %v", err)
	}
	p, err := sim.ParsePolicy(*policy)
	if err != nil {
		log.Fatalf("amf-server: %v", err)
	}
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: p})
	if err != nil {
		log.Fatalf("amf-server: %v", err)
	}
	if *state != "" {
		if err := loadState(sc, *state); err != nil {
			log.Fatalf("amf-server: %v", err)
		}
	}
	reg := obs.NewRegistry()

	var logHandle *wal.Log
	if *dataDir != "" {
		l, recovery, err := wal.Open(*dataDir, wal.Options{})
		if err != nil {
			log.Fatalf("amf-server: opening %s: %v", *dataDir, err)
		}
		st, err := recovery.Replay(sc)
		if err != nil {
			log.Fatalf("amf-server: recovering from %s: %v", *dataDir, err)
		}
		reg.Gauge("wal.replayed_batches").Set(float64(st.Batches))
		reg.Gauge("wal.replayed_mutations").Set(float64(st.Mutations))
		reg.Gauge("wal.replay_failures").Set(float64(st.Failed))
		reg.Gauge("wal.skipped_records").Set(float64(recovery.SkippedRecords))
		reg.Gauge("wal.skipped_states").Set(float64(recovery.SkippedStates))
		log.Printf("amf-server: recovered %d jobs from %s (snapshot=%v, %d batches / %d mutations replayed, %d torn records skipped)",
			sc.Stats().Jobs, *dataDir, st.Restored, st.Batches, st.Mutations, recovery.SkippedRecords)
		logHandle = l
	}

	eng, err := serve.New(sc, serve.Config{
		MaxBatch:        *batchMax,
		BatchWindow:     *batchWindow,
		Metrics:         reg,
		Log:             logHandle,
		CompactBytes:    *compactMB << 20,
		CompactInterval: *compactIval,
	})
	if err != nil {
		log.Fatalf("amf-server: %v", err)
	}
	srv := api.NewEngineServer(eng, reg, caps, p)

	hs := &http.Server{
		Addr:              *listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		// Drain queued mutations; with -data-dir this also folds the WAL
		// into a final snapshot and seals the log.
		_ = eng.Close()
		if *state != "" {
			// Persist the job set so a restart resumes where it left off.
			if err := saveState(sc, *state); err != nil {
				log.Printf("amf-server: saving state: %v", err)
			} else {
				log.Printf("amf-server: state saved to %s", *state)
			}
		}
		if *dumpMetrics {
			if buf, err := json.MarshalIndent(reg.Snapshot(), "", "  "); err == nil {
				log.Printf("amf-server: final metrics:\n%s", buf)
			}
		}
		os.Exit(0)
	}()
	durability := "none (in-memory)"
	if *dataDir != "" {
		durability = "wal @ " + *dataDir
	} else if *state != "" {
		durability = "snapshot-on-exit @ " + *state
	}
	log.Printf("amf-server: %d sites, policy %s, batch-max %d, durability %s, listening on %s",
		len(caps), p, *batchMax, durability, *listen)
	if err := hs.ListenAndServe(); err != nil {
		log.Fatalf("amf-server: %v", err)
	}
}

func loadState(sc *scheduler.Scheduler, path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // first boot
		}
		return err
	}
	defer f.Close()
	if err := sc.ReadSnapshot(f); err != nil {
		return err
	}
	log.Printf("amf-server: restored %d jobs from %s", sc.Stats().Jobs, path)
	return nil
}

func saveState(sc *scheduler.Scheduler, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := sc.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func parseCapacities(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	caps := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad capacity %q: %w", part, err)
		}
		caps = append(caps, v)
	}
	return caps, nil
}

// Command amf-server runs the allocation controller as a standalone JSON/
// HTTP service (see internal/api for the endpoint reference).
//
// Requests are served through the concurrent engine (internal/serve):
// mutations are group-committed — many queued mutations share one
// re-solve — and allocation reads come lock-free from an immutable
// snapshot. -batch-max and -batch-window tune the batching; -batch-max 1
// restores one-solve-per-mutation behavior.
//
// With -data-dir the controller is durable: every committed batch is
// appended to a write-ahead log (internal/wal) and fsynced before it is
// acknowledged, the log is periodically folded into a state snapshot, and
// a restart — graceful or after a crash — replays the directory back to
// exactly the acknowledged state. -state remains as a lighter-weight
// alternative (snapshot on SIGTERM only; mutations between snapshot and
// crash are lost). The listener comes up before replay starts: until
// recovery completes, GET /v1/healthz answers 200 and everything else —
// including GET /v1/readyz — answers 503 with the stable "unavailable"
// code, so orchestrators can distinguish live from ready.
//
// Cluster modes (internal/cluster):
//
//   - -cluster-shards N hosts N engine shards in one process behind a
//     shard router; each shard keeps its own WAL under
//     <data-dir>/shard-<i> and the router's merged API is served on
//     -listen. Jobs are routed by their site footprint; under
//     amf-enhanced the router broadcasts the global weight sum so
//     per-shard solves equal the single-engine solve exactly.
//   - -ship-addr serves the write-ahead log(s) for replication on a
//     second listener: GET <ship-addr>/wal for a single engine,
//     GET <ship-addr>/wal/shard-<i> per cluster shard.
//   - -replica-of URL runs a read replica: it tails the WAL stream at
//     URL (a -ship-addr endpoint), replays batches through its own
//     scheduler, and serves the read-only API on -listen. /v1/readyz is
//     503 until the replica first catches up to the primary's durable
//     head; mutations are rejected with invalid_argument.
//
// Observability: logs are structured JSON on stderr (log/slog); every
// commit is traced into a ring served at GET /v1/traces (-trace-buffer
// sizes it, 0 disables tracing); Prometheus metrics are scraped from
// GET /metrics; -slow-commit logs a warning with per-stage timings for
// commits over the threshold; -debug-addr serves net/http/pprof on a
// separate opt-in listener.
//
// Usage:
//
//	amf-server -listen :8080 -capacity 4,4,8 -policy amf
//	amf-server -data-dir /var/lib/amf -batch-max 256 -batch-window 2ms
//	amf-server -data-dir /var/lib/amf -ship-addr :9090            # primary
//	amf-server -replica-of http://primary:9090/wal -listen :8081  # follower
//	amf-server -cluster-shards 2 -data-dir /var/lib/amf -ship-addr :9090
//	amf-server -debug-addr localhost:6060 -slow-commit 50ms
//
// Example session:
//
//	curl -X POST localhost:8080/v1/jobs \
//	     -d '{"id":"etl","demand":[4,4,0],"work":[20,20,0]}'
//	curl localhost:8080/v1/allocation
//	curl -X POST localhost:8080/v1/jobs/etl/progress -d '{"done":[2,2,0]}'
//	curl localhost:8080/v1/readyz
//	curl localhost:8080/v1/stats
//	curl localhost:8080/metrics
//	curl localhost:8080/v1/traces?limit=5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/policy"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/wal"
)

func main() {
	var (
		listen        = flag.String("listen", ":8080", "listen address")
		capacity      = flag.String("capacity", "4,4", "comma-separated per-site capacities")
		policyName    = flag.String("policy", "amf", "fairness policy: "+strings.Join(policy.Names(), ", "))
		state         = flag.String("state", "", "snapshot file: loaded at boot if present, saved on SIGINT/SIGTERM")
		dataDir       = flag.String("data-dir", "", "durable data directory: write-ahead log + snapshots, replayed on boot")
		clusterShards = flag.Int("cluster-shards", 0, "host this many engine shards behind an in-process router (0/1 = single engine)")
		replicaOf     = flag.String("replica-of", "", "run as a read replica tailing this WAL ship URL (e.g. http://primary:9090/wal)")
		shipAddr      = flag.String("ship-addr", "", "serve WAL replication streams on this address (requires -data-dir)")
		replicaIval   = flag.Duration("replica-interval", 50*time.Millisecond, "replica poll interval against the primary's WAL stream")
		batchMax      = flag.Int("batch-max", 256, "max mutations committed per solve (1 = solve per mutation)")
		batchWindow   = flag.Duration("batch-window", 0, "extra time to gather a batch after its first mutation (0 = only drain what is queued)")
		compactMB     = flag.Int64("wal-compact-mb", 4, "fold the WAL into a snapshot once its record tail exceeds this many MiB")
		compactIval   = flag.Duration("wal-compact-interval", time.Minute, "additionally compact the WAL this often (0 disables the timer)")
		dumpMetrics   = flag.Bool("metrics-on-exit", true, "log a final metrics snapshot as one JSON document on shutdown")
		traceBuf      = flag.Int("trace-buffer", 256, "commit traces kept for GET /v1/traces (0 disables tracing)")
		slowTraceBuf  = flag.Int("slow-trace-buffer", 32, "slowest commit traces retained for GET /v1/traces?slow=1 (0 disables slow retention)")
		slowTraceWin  = flag.Duration("slow-trace-window", 10*time.Minute, "sliding window the slow-trace ring retains over")
		slowCommit    = flag.Duration("slow-commit", 0, "log a warning with per-stage timings for commits slower than this (0 disables)")
		debugAddr     = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty disables; keep it loopback-only)")
		logLevel      = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		approxEps     = flag.Float64("approx-epsilon", 0, "approximate water-filling deviation budget as a fraction of instance scale (0 = always exact)")
		approxThresh  = flag.Int("approx-threshold", 0, "component size (jobs + demand edges) above which the approximate solver engages (0 = never)")
		phaseHot      = flag.Float64("phase-hot-threshold", 0, "dirty-hit fraction above which a component is classified hot and its commutative mutations buffer until a phase boundary (0 disables phase reconciliation)")
		phaseBatches  = flag.Int("phase-max-batches", 0, "buffered batches per phase before a forced reconcile (0 = default)")
		phaseInterval = flag.Int("phase-max-interval-ms", 0, "max age in ms of a buffered delta before a forced reconcile (0 = default)")
		phaseWindow   = flag.Int("phase-window", 0, "sliding window of commits the hot/cold classifier scores over (0 = default)")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err != nil {
		fatal(slog.Default(), "amf-server: invalid -log-level", err)
	}
	slog.SetDefault(logger)

	caps, err := parseCapacities(*capacity)
	if err != nil {
		fatal(logger, "amf-server: bad -capacity", err)
	}
	p, err := policy.ForName(*policyName)
	if err != nil {
		fatal(logger, "amf-server: bad -policy", err)
	}
	// Reject bad approximation knobs at parse time with the same
	// invalid-argument semantics the API enforces, instead of failing the
	// first solve.
	if *approxEps < 0 || math.IsNaN(*approxEps) || math.IsInf(*approxEps, 0) {
		fatal(logger, "amf-server: bad -approx-epsilon",
			fmt.Errorf("must be a finite non-negative fraction, got %g", *approxEps))
	}
	if *approxThresh < 0 {
		fatal(logger, "amf-server: bad -approx-threshold",
			fmt.Errorf("must be non-negative, got %d", *approxThresh))
	}
	phase := scheduler.PhaseConfig{
		HotThreshold:  *phaseHot,
		MaxBatches:    *phaseBatches,
		MaxIntervalMS: *phaseInterval,
		Window:        *phaseWindow,
	}
	if err := phase.Validate(); err != nil {
		fatal(logger, "amf-server: bad phase flags", err)
	}
	cfg := serverConfig{
		listen:       *listen,
		shipAddr:     *shipAddr,
		dataDir:      *dataDir,
		batchMax:     *batchMax,
		batchWindow:  *batchWindow,
		compactMB:    *compactMB,
		compactIval:  *compactIval,
		traceBuf:     *traceBuf,
		slowTraceBuf: *slowTraceBuf,
		slowTraceWin: *slowTraceWin,
		slowCommit:   *slowCommit,
		interval:     *replicaIval,
		approxEps:    *approxEps,
		approxThresh: *approxThresh,
		phase:        phase,
	}

	// The listener comes up before any WAL replay or replica sync: until
	// the mode handler is swapped in, healthz answers 200 and everything
	// else 503/unavailable, so probes see live-but-unready during boot.
	swap := newSwapHandler()
	hs := &http.Server{
		Addr:              *listen,
		Handler:           swap,
		ReadHeaderTimeout: 10 * time.Second,
	}
	listenErr := make(chan error, 1)
	go func() { listenErr <- hs.ListenAndServe() }()

	if *debugAddr != "" {
		go serveDebug(logger, *debugAddr)
	}

	var (
		handler http.Handler
		stop    func()
		mode    string
	)
	switch {
	case *replicaOf != "":
		mode = "replica"
		if *clusterShards > 1 {
			fatal(logger, "amf-server: flags", fmt.Errorf("-replica-of and -cluster-shards are mutually exclusive"))
		}
		if *dataDir != "" || *state != "" {
			fatal(logger, "amf-server: flags", fmt.Errorf("a replica rebuilds its state from the primary's WAL; drop -data-dir/-state"))
		}
		handler, stop, err = runReplica(logger, caps, p, *replicaOf, cfg)
	case *clusterShards > 1:
		mode = fmt.Sprintf("cluster(%d shards)", *clusterShards)
		if *state != "" {
			fatal(logger, "amf-server: flags", fmt.Errorf("-state is single-engine only; use -data-dir for per-shard WALs"))
		}
		handler, stop, err = runCluster(logger, caps, p, *clusterShards, cfg)
	default:
		mode = "single"
		handler, stop, err = runSingle(logger, caps, p, *state, *dumpMetrics, cfg)
	}
	if err != nil {
		fatal(logger, "amf-server: "+mode, err)
	}
	swap.Swap(handler)
	logger.Info("serving",
		"listen", *listen,
		"mode", mode,
		"sites", len(caps),
		"policy", p.Name(),
		"tracing", *traceBuf > 0)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-listenErr:
		fatal(logger, "amf-server: listen", err)
	case <-sigs:
		stop()
		os.Exit(0)
	}
}

// runSingle assembles the classic one-engine server: scheduler, optional
// WAL replay, serve.Engine, API handler. The returned stop func drains
// the engine and performs the -state / -metrics-on-exit shutdown work.
func runSingle(logger *slog.Logger, caps []float64, p policy.Policy, state string, dumpMetrics bool, cfg serverConfig) (http.Handler, func(), error) {
	sc, err := scheduler.New(scheduler.Config{
		SiteCapacity:    caps,
		Policy:          p,
		ApproxEpsilon:   cfg.approxEps,
		ApproxThreshold: cfg.approxThresh,
		Phase:           cfg.phase,
	})
	if err != nil {
		return nil, nil, err
	}
	if state != "" {
		if err := loadState(logger, sc, state); err != nil {
			return nil, nil, fmt.Errorf("loading state: %w", err)
		}
	}
	reg := obs.NewRegistry()

	var logHandle *wal.Log
	if cfg.dataDir != "" {
		l, recovery, err := wal.Open(cfg.dataDir, wal.Options{})
		if err != nil {
			return nil, nil, fmt.Errorf("opening data dir %s: %w", cfg.dataDir, err)
		}
		st, err := recovery.Replay(sc)
		if err != nil {
			return nil, nil, fmt.Errorf("recovering %s: %w", cfg.dataDir, err)
		}
		reg.Gauge("wal.replayed_batches").Set(float64(st.Batches))
		reg.Gauge("wal.replayed_mutations").Set(float64(st.Mutations))
		reg.Gauge("wal.replay_failures").Set(float64(st.Failed))
		reg.Gauge("wal.skipped_records").Set(float64(recovery.SkippedRecords))
		reg.Gauge("wal.skipped_states").Set(float64(recovery.SkippedStates))
		logger.Info("recovered from write-ahead log",
			"dir", cfg.dataDir,
			"jobs", sc.Stats().Jobs,
			"snapshot", st.Restored,
			"batches", st.Batches,
			"mutations", st.Mutations,
			"torn_records_skipped", recovery.SkippedRecords)
		logHandle = l
	}
	if cfg.shipAddr != "" {
		if logHandle == nil {
			return nil, nil, fmt.Errorf("-ship-addr requires -data-dir (there is no log to ship)")
		}
		go serveShip(logger, cfg.shipAddr, map[string]*wal.Log{"/wal": logHandle})
	}

	var traces *span.Recorder
	if cfg.traceBuf > 0 {
		traces = span.NewRecorder(cfg.traceBuf)
	}
	var slowTraces *span.SlowRecorder
	if cfg.slowTraceBuf > 0 {
		slowTraces = span.NewSlowRecorder(cfg.slowTraceBuf, cfg.slowTraceWin)
	}
	eng, err := serve.New(sc, serve.Config{
		MaxBatch:        cfg.batchMax,
		BatchWindow:     cfg.batchWindow,
		Metrics:         reg,
		Log:             logHandle,
		CompactBytes:    cfg.compactMB << 20,
		CompactInterval: cfg.compactIval,
		Traces:          traces,
		SlowTraces:      slowTraces,
		Logger:          logger,
		SlowCommit:      cfg.slowCommit,
	})
	if err != nil {
		return nil, nil, err
	}
	srv := api.NewEngineServer(eng, reg, caps, p).SetTraces(traces).SetSlowTraces(slowTraces)

	durability := "none (in-memory)"
	if cfg.dataDir != "" {
		durability = "wal @ " + cfg.dataDir
	} else if state != "" {
		durability = "snapshot-on-exit @ " + state
	}
	logger.Info("engine ready", "batch_max", cfg.batchMax, "durability", durability)

	stop := func() {
		// Drain queued mutations; with -data-dir this also folds the WAL
		// into a final snapshot and seals the log.
		_ = eng.Close()
		if state != "" {
			// Persist the job set so a restart resumes where it left off.
			if err := saveState(sc, state); err != nil {
				logger.Error("saving state failed", "path", state, "err", err.Error())
			} else {
				logger.Info("state saved", "path", state)
			}
		}
		if dumpMetrics {
			// One structured record wrapping the whole snapshot: the
			// document lands on stderr as a single JSON line instead of
			// interleaving with stdout, so `amf-server 2>log` followed by
			// `jq .metrics log` recovers it mechanically.
			if buf, err := json.Marshal(reg.Snapshot()); err == nil {
				logger.Info("final metrics", "metrics", json.RawMessage(buf))
			}
		}
	}
	return srv.Handler(), stop, nil
}

// newLogger builds the process logger: structured JSON to stderr.
func newLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, err
	}
	return slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

func fatal(logger *slog.Logger, msg string, err error, args ...any) {
	logger.Error(msg, append([]any{"err", err.Error()}, args...)...)
	os.Exit(1)
}

// serveDebug exposes net/http/pprof on its own opt-in listener, on an
// explicit mux so the profiling surface never leaks onto the API port.
func serveDebug(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof listening", "addr", addr)
	ds := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	if err := ds.ListenAndServe(); err != nil {
		logger.Error("pprof listener failed", "addr", addr, "err", err.Error())
	}
}

func loadState(logger *slog.Logger, sc *scheduler.Scheduler, path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // first boot
		}
		return err
	}
	defer f.Close()
	if err := sc.ReadSnapshot(f); err != nil {
		return err
	}
	logger.Info("state restored", "path", path, "jobs", sc.Stats().Jobs)
	return nil
}

func saveState(sc *scheduler.Scheduler, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := sc.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func parseCapacities(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	caps := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad capacity %q: %w", part, err)
		}
		caps = append(caps, v)
	}
	return caps, nil
}

package main

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/policy"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/wal"
)

// swapHandler lets the listener come up before recovery finishes: it
// serves a boot surface (healthz 200, everything else 503 with the
// stable "unavailable" code) until Swap installs the real handler.
// Routers and load balancers polling GET /v1/readyz therefore see the
// process as live-but-unready for the whole WAL replay, exactly like a
// replica that has not caught up.
type swapHandler struct {
	h atomic.Pointer[http.Handler]
}

func newSwapHandler() *swapHandler {
	s := &swapHandler{}
	var boot http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status":"ok"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, `{"error":"recovering: write-ahead log replay in progress","code":%q,"status":"unready"}`+"\n",
			api.CodeUnavailable)
	})
	s.h.Store(&boot)
	return s
}

func (s *swapHandler) Swap(h http.Handler) { s.h.Store(&h) }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}

// serverConfig is the subset of flags the cluster/replica modes consume.
type serverConfig struct {
	listen       string
	shipAddr     string
	dataDir      string
	batchMax     int
	batchWindow  time.Duration
	compactMB    int64
	compactIval  time.Duration
	traceBuf     int
	slowTraceBuf int
	slowTraceWin time.Duration
	slowCommit   time.Duration
	interval     time.Duration
	// Approximate water-filling knobs, passed to every shard's solver.
	// Replicas ignore them: a replica replays the primary's WAL and serves
	// reads, so its allocation must track the primary byte-for-byte.
	approxEps    float64
	approxThresh int
	// Phase-reconciliation boot knobs (PATCH /v1/config retunes them at
	// runtime). Replicas inherit whatever the primary's WAL dictates.
	phase scheduler.PhaseConfig
}

// shardParts bundles one assembled shard engine with the observability
// hooks the cluster router needs: its trace rings and the registry it
// instruments (scraped by the router's metrics federation).
type shardParts struct {
	eng    *serve.Engine
	log    *wal.Log
	traces *span.Recorder
	slow   *span.SlowRecorder
	reg    *obs.Registry
}

// buildShardEngine assembles one durable engine: scheduler, WAL replay,
// tracing — the same stack the single-engine path runs, minus the flags.
func buildShardEngine(logger *slog.Logger, caps []float64, p policy.Policy, dir string, cfg serverConfig) (shardParts, error) {
	sc, err := scheduler.New(scheduler.Config{
		SiteCapacity:    caps,
		Policy:          p,
		ApproxEpsilon:   cfg.approxEps,
		ApproxThreshold: cfg.approxThresh,
		Phase:           cfg.phase,
	})
	if err != nil {
		return shardParts{}, err
	}
	var logHandle *wal.Log
	if dir != "" {
		l, recovery, err := wal.Open(dir, wal.Options{})
		if err != nil {
			return shardParts{}, fmt.Errorf("opening %s: %w", dir, err)
		}
		st, err := recovery.Replay(sc)
		if err != nil {
			return shardParts{}, fmt.Errorf("recovering %s: %w", dir, err)
		}
		logger.Info("shard recovered", "dir", dir, "jobs", sc.Stats().Jobs,
			"snapshot", st.Restored, "batches", st.Batches)
		logHandle = l
	}
	var traces *span.Recorder
	if cfg.traceBuf > 0 {
		traces = span.NewRecorder(cfg.traceBuf)
	}
	var slow *span.SlowRecorder
	if cfg.slowTraceBuf > 0 {
		slow = span.NewSlowRecorder(cfg.slowTraceBuf, cfg.slowTraceWin)
	}
	reg := obs.NewRegistry()
	eng, err := serve.New(sc, serve.Config{
		MaxBatch:        cfg.batchMax,
		BatchWindow:     cfg.batchWindow,
		Metrics:         reg,
		Log:             logHandle,
		CompactBytes:    cfg.compactMB << 20,
		CompactInterval: cfg.compactIval,
		Traces:          traces,
		SlowTraces:      slow,
		Logger:          logger,
		SlowCommit:      cfg.slowCommit,
	})
	if err != nil {
		return shardParts{}, err
	}
	return shardParts{eng: eng, log: logHandle, traces: traces, slow: slow, reg: reg}, nil
}

// runCluster hosts n engine shards in one process behind an in-process
// router: the tentpole deployment of -cluster-shards. Each shard gets
// its own WAL directory (<data-dir>/shard-<i>) and, with -ship-addr,
// its own replication stream at /wal/shard-<i>.
func runCluster(logger *slog.Logger, caps []float64, p policy.Policy, n int, cfg serverConfig) (http.Handler, func(), error) {
	shards := make([]cluster.Shard, n)
	engines := make([]*serve.Engine, n)
	logs := map[string]*wal.Log{}
	for i := 0; i < n; i++ {
		dir := ""
		if cfg.dataDir != "" {
			dir = filepath.Join(cfg.dataDir, fmt.Sprintf("shard-%d", i))
		}
		parts, err := buildShardEngine(logger, caps, p, dir, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", i, err)
		}
		engines[i] = parts.eng
		shards[i] = cluster.EngineShard{Eng: parts.eng, Rec: parts.traces, Slow: parts.slow, Reg: parts.reg}
		if parts.log != nil {
			logs[fmt.Sprintf("/wal/shard-%d", i)] = parts.log
		}
	}
	router, err := cluster.NewRouter(shards, p)
	if err != nil {
		return nil, nil, err
	}
	// Rebuild the routing ledger from whatever the shards replayed — a
	// restart resumes routing (and Enhanced floors) where it left off.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := router.SyncFromShards(ctx); err != nil {
		return nil, nil, fmt.Errorf("syncing router: %w", err)
	}
	st := router.RouterStats()
	logger.Info("cluster assembled", "shards", n, "jobs", st.Jobs,
		"owned_sites", st.OwnedSites, "weight_sum", st.WeightSum)

	if cfg.shipAddr != "" && len(logs) > 0 {
		go serveShip(logger, cfg.shipAddr, logs)
	}
	stop := func() {
		for _, eng := range engines {
			_ = eng.Close()
		}
	}
	return cluster.NewHandler(router, obs.NewRegistry(), caps, p), stop, nil
}

// runReplica tails a primary's WAL stream (-replica-of) and serves the
// read-only API; /v1/readyz is 503 until the first catch-up.
func runReplica(logger *slog.Logger, caps []float64, p policy.Policy, source string, cfg serverConfig) (http.Handler, func(), error) {
	reg := obs.NewRegistry()
	rep, err := cluster.NewReplica(cluster.ReplicaConfig{
		Source:       &wal.ShipClient{Base: source},
		SiteCapacity: caps,
		Policy:       p,
		Interval:     cfg.interval,
		Metrics:      reg,
		TraceBuffer:  cfg.traceBuf,
	})
	if err != nil {
		return nil, nil, err
	}
	logger.Info("replica tailing", "source", source, "interval", cfg.interval)
	srv := api.NewBackendServer(rep, reg, caps, p).SetTraces(rep.Traces())
	return srv.Handler(), func() { _ = rep.Close() }, nil
}

// serveShip mounts WAL replication streams on their own listener, so
// follower traffic never contends with the client API port.
func serveShip(logger *slog.Logger, addr string, logs map[string]*wal.Log) {
	mux := http.NewServeMux()
	for path, l := range logs {
		mux.Handle("GET "+path, wal.NewShipHandler(l))
	}
	logger.Info("wal shipping", "addr", addr, "streams", len(logs))
	hs := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	if err := hs.ListenAndServe(); err != nil {
		logger.Error("ship listener failed", "addr", addr, "err", err.Error())
	}
}

// Command amf-solve computes a fair allocation for a single instance.
//
// Usage:
//
//	amf-solve -in instance.json [-policy amf|amf+jct|amf-enhanced|psmmf]
//	          [-method newton|bisect] [-out alloc.json] [-csv alloc.csv]
//	          [-verify]
//
// The instance is read as JSON (see trace.ReadInstance for the schema;
// cmd/amf-gen produces compatible files). The allocation, its aggregates
// and summary fairness metrics are printed; -out/-csv write machine
// formats. -verify additionally runs the fairness property checkers.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/trace"
)

func main() {
	var (
		inPath  = flag.String("in", "", "instance JSON file (required)")
		policy  = flag.String("policy", "amf", "allocation policy: psmmf, amf, amf+jct, amf-enhanced")
		method  = flag.String("method", "newton", "bottleneck finder: newton or bisect")
		outPath = flag.String("out", "", "write allocation JSON here")
		csvPath = flag.String("csv", "", "write allocation CSV here")
		verify  = flag.Bool("verify", false, "run fairness property verifiers")
		explain = flag.Bool("explain", false, "print the bottleneck cascade (amf/amf-enhanced only)")
	)
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*inPath, *policy, *method, *outPath, *csvPath, *verify, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "amf-solve:", err)
		os.Exit(1)
	}
}

func run(inPath, policy, method, outPath, csvPath string, verify, explain bool) error {
	f, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	in, err := trace.ReadInstance(f)
	if err != nil {
		return err
	}

	sv := core.NewSolver()
	switch method {
	case "newton":
		sv.Method = core.MethodNewton
	case "bisect":
		sv.Method = core.MethodBisect
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	p, err := sim.ParsePolicy(policy)
	if err != nil {
		return err
	}
	alloc, err := p.Allocate(sv, in)
	if err != nil {
		return err
	}

	printAllocation(in, alloc, p)
	if verify {
		printVerification(in, alloc, p)
	}
	if explain {
		if err := printExplanation(sv, in, p); err != nil {
			return err
		}
	}
	if outPath != "" {
		out, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := trace.WriteAllocation(out, alloc); err != nil {
			return err
		}
	}
	if csvPath != "" {
		out, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := trace.WriteAllocationCSV(out, alloc); err != nil {
			return err
		}
	}
	return nil
}

func jobName(in *core.Instance, j int) string {
	if in.JobName != nil && in.JobName[j] != "" {
		return in.JobName[j]
	}
	return fmt.Sprintf("job-%d", j)
}

func printAllocation(in *core.Instance, alloc *core.Allocation, p sim.Policy) {
	t := table.New(fmt.Sprintf("Allocation (%s)", p), "job", "aggregate", "equal-share", "demand", "stretch")
	es := core.EqualShares(in)
	for j := 0; j < in.NumJobs(); j++ {
		t.AddRow(jobName(in, j), alloc.Aggregate(j), es[j], in.TotalDemand(j), alloc.Stretch(j))
	}
	fmt.Print(t.Render())

	agg := alloc.Aggregates()
	s := table.New("Summary", "metric", "value")
	s.AddRow("jobs", in.NumJobs())
	s.AddRow("sites", in.NumSites())
	s.AddRow("utilization", alloc.Utilization())
	s.AddRow("jain index", fairness.JainIndex(agg))
	s.AddRow("min/max ratio", fairness.MinMaxRatio(agg))
	fmt.Println()
	fmt.Print(s.Render())
}

func printExplanation(sv *core.Solver, in *core.Instance, p sim.Policy) error {
	var diag *core.Diagnostics
	var err error
	switch p {
	case sim.PolicyAMF, sim.PolicyAMFJCT:
		_, diag, err = sv.AMFDiag(in)
	case sim.PolicyEnhancedAMF:
		_, diag, err = sv.EnhancedAMFDiag(in)
	default:
		fmt.Println("\n(no bottleneck cascade for per-site policies)")
		return nil
	}
	if err != nil {
		return err
	}
	t := table.New("Bottleneck cascade", "round", "level", "bottlenecked", "demand-capped")
	for i, r := range diag.Rounds {
		t.AddRow(i+1, r.Level, names(in, r.Bottlenecked), names(in, r.DemandCapped))
	}
	fmt.Println()
	fmt.Print(t.Render())
	return nil
}

func names(in *core.Instance, jobs []int) string {
	if len(jobs) == 0 {
		return "-"
	}
	out := ""
	for i, j := range jobs {
		if i > 0 {
			out += ","
		}
		out += jobName(in, j)
	}
	return out
}

func printVerification(in *core.Instance, alloc *core.Allocation, p sim.Policy) {
	scale := in.Scale()
	t := table.New("Verification", "property", "result")
	if err := alloc.CheckFeasible(1e-6 * scale); err != nil {
		t.AddRow("feasible", err.Error())
	} else {
		t.AddRow("feasible", "ok")
	}
	if core.IsParetoEfficient(alloc, 1e-5*scale*float64(in.NumJobs()+1)) {
		t.AddRow("pareto efficient", "ok")
	} else {
		t.AddRow("pareto efficient", "VIOLATED")
	}
	if j, bad := core.AggregateMaxMinViolation(alloc, 1e-4*scale); bad {
		msg := fmt.Sprintf("VIOLATED (job %d can be raised)", j)
		if p == sim.PolicyEnhancedAMF {
			// The floors deliberately trade plain leximin optimality for
			// the sharing-incentive guarantee.
			msg = fmt.Sprintf("not leximin-optimal (job %d held back by floors — expected for amf-enhanced)", j)
		}
		t.AddRow("aggregate max-min", msg)
	} else {
		t.AddRow("aggregate max-min", "ok")
	}
	if pairs := core.EnvyPairs(alloc, 1e-5*scale); len(pairs) > 0 {
		t.AddRow("envy-free", fmt.Sprintf("VIOLATED (%d pairs)", len(pairs)))
	} else {
		t.AddRow("envy-free", "ok")
	}
	if jobs, _ := core.SharingIncentiveViolations(alloc, 1e-6*scale); len(jobs) > 0 {
		t.AddRow("sharing incentive", fmt.Sprintf("VIOLATED for jobs %v", jobs))
	} else {
		t.AddRow("sharing incentive", "ok")
	}
	fmt.Println()
	fmt.Print(t.Render())
}

// Command amf-router fronts a set of amf-server shards with the cluster
// shard router (internal/cluster): mutations are routed to the shard
// owning the job's site footprint, reads are fanned out and merged into
// one coherent response with a cluster-wide version vector, and under
// amf-enhanced the router broadcasts the global weight sum so each
// shard's local solve equals the single-engine solve exactly.
//
// Capacity and policy are discovered from the shards' /v1/config and
// must agree across all of them. At boot the router rebuilds its routing
// ledger from the shards' live snapshots (SyncFromShards), so it can be
// restarted — or pointed at already-populated shards — without losing
// placement or the Enhanced weight floors.
//
// Usage:
//
//	amf-router -listen :8080 -shards http://s0:8081,http://s1:8082
//
// Example session (through the router):
//
//	curl -X POST localhost:8080/v1/jobs \
//	     -d '{"id":"etl","demand":[4,4,0],"work":[20,20,0]}'
//	curl localhost:8080/v1/allocation          # merged across shards
//	curl localhost:8080/v1/cluster/versions    # per-shard version vector
//	curl localhost:8080/v1/cluster/stats       # routing ledger + broadcasts
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/policy"
)

func main() {
	var (
		listen     = flag.String("listen", ":8080", "listen address")
		shardCSV   = flag.String("shards", "", "comma-separated shard base URLs (required, e.g. http://s0:8081,http://s1:8082)")
		replicaCSV = flag.String("replicas", "", "comma-separated replica base URLs folded into the federated /metrics page (optional)")
		timeout    = flag.Duration("boot-timeout", 30*time.Second, "deadline for discovering shard config and syncing the routing ledger")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	)
	flag.Parse()

	var lv slog.Level
	if err := lv.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "amf-router: invalid -log-level:", err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
	slog.SetDefault(logger)
	fail := func(msg string, err error) {
		logger.Error(msg, "err", err.Error())
		os.Exit(1)
	}

	urls := splitURLs(*shardCSV)
	if len(urls) == 0 {
		fail("amf-router: flags", fmt.Errorf("-shards is required"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Discover capacity/policy from the shards; the cluster is only
	// well-formed when every shard solves over the same site set.
	shards := make([]cluster.Shard, len(urls))
	var caps []float64
	var pol policy.Policy
	for i, u := range urls {
		cl := api.NewClient(u, nil)
		cfg, err := waitConfig(ctx, cl)
		if err != nil {
			fail("amf-router: shard config", fmt.Errorf("%s: %w", u, err))
		}
		p, err := policy.ForName(cfg.Policy)
		if err != nil {
			fail("amf-router: shard policy", fmt.Errorf("%s: %w", u, err))
		}
		if i == 0 {
			caps, pol = cfg.SiteCapacity, p
		} else if p.Name() != pol.Name() || !sameCaps(caps, cfg.SiteCapacity) {
			fail("amf-router: shard config", fmt.Errorf(
				"%s disagrees with %s (capacity %v policy %s vs %v %s)",
				u, urls[0], cfg.SiteCapacity, p.Name(), caps, pol.Name()))
		}
		shards[i] = cluster.HTTPShard{Client: cl}
	}

	router, err := cluster.NewRouter(shards, pol)
	if err != nil {
		fail("amf-router: router", err)
	}
	if err := router.SyncFromShards(ctx); err != nil {
		fail("amf-router: syncing ledger", err)
	}
	// Replicas are not routed to — they only join the federated /metrics
	// scrape, labeled replica="i", so one page covers the whole cluster.
	replicaURLs := splitURLs(*replicaCSV)
	for i, u := range replicaURLs {
		cl := api.NewClient(u, nil)
		router.AddScrapeTarget("replica", strconv.Itoa(i), cl.ScrapeMetrics)
	}
	st := router.RouterStats()
	logger.Info("router ready",
		"listen", *listen,
		"shards", len(shards),
		"sites", len(caps),
		"policy", pol.Name(),
		"jobs", st.Jobs,
		"owned_sites", st.OwnedSites,
		"weight_sum", st.WeightSum)

	hs := &http.Server{
		Addr:              *listen,
		Handler:           cluster.NewHandler(router, obs.NewRegistry(), caps, pol),
		ReadHeaderTimeout: 10 * time.Second,
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		logger.Info("shutting down")
		os.Exit(0)
	}()
	if err := hs.ListenAndServe(); err != nil {
		fail("amf-router: listen", err)
	}
}

// waitConfig polls a shard's /v1/config until it answers or ctx expires,
// so the router can be started alongside its shards without ordering.
func waitConfig(ctx context.Context, cl *api.Client) (api.ConfigResponse, error) {
	for {
		cfg, err := cl.Config(ctx)
		if err == nil {
			return cfg, nil
		}
		select {
		case <-ctx.Done():
			return api.ConfigResponse{}, err
		case <-time.After(200 * time.Millisecond):
		}
	}
}

func splitURLs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, strings.TrimRight(part, "/"))
		}
	}
	return out
}

func sameCaps(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 0 {
			return false
		}
	}
	return true
}

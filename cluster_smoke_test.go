package repro_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/scheduler"
	"repro/internal/policy"
	"repro/internal/workload"
)

// TestClusterSmoke is the multi-process cluster deployment test: it
// builds the real binaries and boots the topology from the README
// quickstart — two single-engine amf-server shards (one shipping its
// WAL), one read replica tailing that stream, and an amf-router fronting
// the shards — then drives bounded churn through the router and checks
// that the merged allocation matches a single-engine oracle and that the
// replica converges to its primary.
//
// It spawns four OS processes and builds two binaries, so it only runs
// when AMF_CLUSTER_SMOKE=1 (CI runs it as a dedicated job).
func TestClusterSmoke(t *testing.T) {
	if os.Getenv("AMF_CLUSTER_SMOKE") != "1" {
		t.Skip("set AMF_CLUSTER_SMOKE=1 to run the multi-process cluster smoke test")
	}

	bin := t.TempDir()
	for _, cmd := range []string{"amf-server", "amf-router"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", cmd, err, out)
		}
	}

	churn := workload.GenerateChurn(workload.ChurnConfig{
		Sparse: workload.SparseConfig{
			Components:        6,
			JobsPerComponent:  3,
			SitesPerComponent: 2,
			Seed:              515,
		},
		Mutations: 40,
		Seed:      516,
		ZipfSkew:  1.1,
	})
	caps := churn.Inst.SiteCapacity
	capsArg := ""
	for i, c := range caps {
		if i > 0 {
			capsArg += ","
		}
		capsArg += fmt.Sprintf("%g", c)
	}
	const polName = "amf-enhanced"

	shard0 := freeAddr(t)
	shard1 := freeAddr(t)
	ship := freeAddr(t)
	replica := freeAddr(t)
	front := freeAddr(t)
	data := t.TempDir()

	start := func(name string, args ...string) {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Signal(syscall.SIGTERM)
			done := make(chan struct{})
			go func() { _, _ = cmd.Process.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				_ = cmd.Process.Kill()
			}
		})
	}
	start("amf-server", "-listen", shard0, "-capacity", capsArg, "-policy", polName,
		"-data-dir", filepath.Join(data, "shard0"), "-ship-addr", ship, "-metrics-on-exit=false")
	start("amf-server", "-listen", shard1, "-capacity", capsArg, "-policy", polName,
		"-data-dir", filepath.Join(data, "shard1"), "-metrics-on-exit=false")
	start("amf-server", "-listen", replica, "-capacity", capsArg, "-policy", polName,
		"-replica-of", "http://"+ship+"/wal", "-replica-interval", "5ms", "-metrics-on-exit=false")
	start("amf-router", "-listen", front, "-shards",
		"http://"+shard0+",http://"+shard1,
		"-replicas", "http://"+replica)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	router := api.NewClient("http://"+front, nil)
	waitReady(ctx, t, "router", router)

	// Oracle: one scheduler solving the whole instance in-process.
	oracle, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: policy.EnhancedAMF})
	if err != nil {
		t.Fatal(err)
	}
	apply := func(what string, target workload.ChurnTarget) {
		t.Helper()
		if err := churn.Populate(target); err != nil {
			t.Fatalf("%s populate: %v", what, err)
		}
		for i, op := range churn.Ops {
			if err := op.Apply(target); err != nil {
				t.Fatalf("%s op %d: %v", what, i, err)
			}
		}
	}
	apply("oracle", oracle)
	apply("router", smokeTarget{ctx, router})

	want, err := oracle.Allocation()
	if err != nil {
		t.Fatal(err)
	}
	got, err := router.Allocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(want) {
		t.Fatalf("router has %d jobs, oracle %d", len(got.Jobs), len(want))
	}
	tol := 1e-9 * churn.Inst.Scale()
	for id, shares := range want {
		r, ok := got.Jobs[id]
		if !ok {
			t.Fatalf("job %q missing from merged allocation", id)
		}
		for s := range shares {
			if d := r.Shares[s] - shares[s]; d > tol || d < -tol {
				t.Fatalf("job %q site %d: router %g vs oracle %g", id, s, r.Shares[s], shares[s])
			}
		}
	}
	if got.Version == 0 {
		t.Fatal("merged allocation carries no version")
	}

	// The replica must catch up to shard0's stream and then serve
	// shard0's exact allocation read-only.
	rep := api.NewClient("http://"+replica, nil)
	waitReady(ctx, t, "replica", rep)
	s0, err := api.NewClient("http://"+shard0, nil).Allocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		ra, err := rep.Allocation(ctx)
		if err == nil && len(ra.Jobs) == len(s0.Jobs) {
			for id, shares := range s0.Jobs {
				r, ok := ra.Jobs[id]
				if !ok {
					t.Fatalf("replica missing job %q", id)
				}
				for s := range shares.Shares {
					if d := r.Shares[s] - shares.Shares[s]; d > tol || d < -tol {
						t.Fatalf("replica job %q site %d: %g vs shard0 %g", id, s, r.Shares[s], shares.Shares[s])
					}
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never converged to shard0 (last err %v)", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := rep.AddJob(ctx, api.AddJobRequest{ID: "nope", Demand: make([]float64, len(caps))}); !errors.Is(err, api.ErrInvalidArgument) {
		t.Fatalf("replica accepted a mutation: %v", err)
	}

	// Observability plane, end to end across the real processes: the
	// router's /v1/traces must serve a stitched forest whose children are
	// the shards' commit traces, correlated by parent trace ID.
	tr, err := router.Traces(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	stitched := 0
	for _, p := range tr.Traces {
		for _, c := range p.Children {
			if c.Parent != p.ID {
				t.Fatalf("stitched child %s has parent %s under tree %s", c.ID, c.Parent, p.ID)
			}
			if c.Shard != "0" && c.Shard != "1" {
				t.Fatalf("stitched child labeled shard %q", c.Shard)
			}
			stitched++
		}
	}
	if stitched == 0 {
		t.Fatalf("no shard commits stitched under %d router traces", len(tr.Traces))
	}

	// A named job explanation routes to the owning shard; the replica
	// explains the same allocation read-only.
	var anyJob string
	for id := range got.Jobs {
		anyJob = id
		break
	}
	ex, err := router.Explain(ctx, anyJob)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Job == nil || ex.Job.Name != anyJob || ex.Shard == "" {
		t.Fatalf("router explain %q = %+v", anyJob, ex)
	}
	for id := range s0.Jobs {
		rex, err := rep.Explain(ctx, id)
		if err != nil {
			t.Fatalf("replica explain %q: %v", id, err)
		}
		if rex.Shard != "replica" || rex.Job == nil {
			t.Fatalf("replica explain %q = %+v", id, rex)
		}
		break
	}

	// One federated scrape covers the whole deployment: shard-labeled
	// families, the replica's page, and the router's own telemetry.
	page, err := router.ScrapeMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	body := string(page)
	for _, want := range []string{`shard="0"`, `shard="1"`, `replica="0"`, "amf_cluster_version_spread"} {
		if !strings.Contains(body, want) {
			t.Fatalf("federated /metrics missing %q", want)
		}
	}
}

// smokeTarget drives the churn stream through a cluster's public API.
type smokeTarget struct {
	ctx context.Context
	c   *api.Client
}

func (t smokeTarget) AddJob(id string, w float64, d, wk []float64) error {
	return t.c.AddJob(t.ctx, api.AddJobRequest{ID: id, Weight: w, Demand: d, Work: wk})
}
func (t smokeTarget) RemoveJob(id string) error { return t.c.RemoveJob(t.ctx, id) }
func (t smokeTarget) UpdateWeight(id string, w float64) error {
	return t.c.UpdateWeight(t.ctx, id, w)
}
func (t smokeTarget) ReportProgress(id string, done []float64) (bool, error) {
	return t.c.ReportProgress(t.ctx, id, done)
}

// waitReady polls GET /v1/readyz until the process answers ready.
func waitReady(ctx context.Context, t *testing.T, what string, cl *api.Client) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var err error
	for time.Now().Before(deadline) {
		if err = cl.Readyz(ctx); err == nil {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never became ready: %v", what, err)
}

// freeAddr reserves a loopback port and releases it for the process
// under test to claim.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

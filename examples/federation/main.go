// Cluster federation with sharing guarantees: several organizations pool
// their clusters. Each org contributed capacity, so each expects at least
// what it would get from an equal partition of every site (the sharing
// incentive). This example builds the endowment scenario where plain AMF
// breaks that expectation — orgs with private clusters lose their
// entitlement at the shared clusters — and shows Enhanced AMF restoring
// it, including with weighted tenants.
//
// Run with: go run ./examples/federation
package main

import (
	"fmt"

	"repro"
	"repro/internal/workload"
)

func main() {
	// Three orgs with private clusters plus small claims on two scarce
	// shared clusters; six "poor" tenants run only on the shared clusters.
	in := workload.EndowmentInstance(workload.EndowmentConfig{
		NumEndowed:  3,
		NumShared:   2,
		PoorPerSite: 3,
		Seed:        7,
	})
	solver := repro.NewSolver()

	es := repro.EqualShares(in)
	amf, err := solver.AMF(in)
	if err != nil {
		panic(err)
	}
	enh, err := solver.EnhancedAMF(in)
	if err != nil {
		panic(err)
	}

	fmt.Println("job        equal-share     AMF   enhanced   (violation?)")
	for j := 0; j < in.NumJobs(); j++ {
		kind := "org"
		if j >= 3 {
			kind = "tenant"
		}
		mark := ""
		if amf.Aggregate(j) < es[j]-1e-6 {
			mark = "AMF below equal share"
		}
		fmt.Printf("%-10s %9.4f %9.4f %9.4f   %s\n",
			fmt.Sprintf("%s-%d", kind, j), es[j], amf.Aggregate(j), enh.Aggregate(j), mark)
	}

	jobs, gaps := repro.SharingIncentiveViolations(amf, 1e-6)
	fmt.Printf("\nplain AMF violates the sharing incentive for %d org(s)", len(jobs))
	if len(jobs) > 0 {
		fmt.Printf(" (max shortfall %.4f)", max(gaps))
	}
	fmt.Println()
	jobs, _ = repro.SharingIncentiveViolations(enh, 1e-6)
	fmt.Printf("enhanced AMF violations: %d\n", len(jobs))

	// Weighted tenants: an org that contributed twice the hardware gets a
	// weight of 2; all guarantees scale with the weights.
	weighted := in.Clone()
	weighted.Weight = make([]float64, in.NumJobs())
	for j := range weighted.Weight {
		weighted.Weight[j] = 1
	}
	weighted.Weight[0] = 2
	wenh, err := solver.EnhancedAMF(weighted)
	if err != nil {
		panic(err)
	}
	wes := repro.EqualShares(weighted)
	fmt.Printf("\nwith weight 2, org-0's guarantee rises from %.4f to %.4f "+
		"(received %.4f)\n", es[0], wes[0], wenh.Aggregate(0))
}

func max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

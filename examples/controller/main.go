// Live controller: the scheduler package is the integration surface a
// cluster manager embeds. Jobs come and go, executors report progress,
// and the controller exposes the current fair shares — re-solving only
// when the demand topology changes (hysteresis).
//
// Run with: go run ./examples/controller
package main

import (
	"fmt"

	"repro/internal/scheduler"
	"repro/internal/policy"
)

func main() {
	sc, err := scheduler.New(scheduler.Config{
		SiteCapacity: []float64{4, 4}, // two sites, 4 slots each
		Policy:       policy.AMF,
	})
	if err != nil {
		panic(err)
	}

	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	show := func(when string) {
		alloc, err := sc.Allocation()
		must(err)
		fmt.Printf("%-28s", when)
		for _, id := range []string{"etl", "training", "adhoc"} {
			if sh, ok := alloc[id]; ok {
				agg := sh[0] + sh[1]
				fmt.Printf("  %s=%.2f", id, agg)
			}
		}
		fmt.Println()
	}

	// An ETL job lands with work at both sites.
	must(sc.AddJob("etl", 1, []float64{4, 4}, []float64{20, 20}))
	show("etl arrives:")

	// A training job lands, pinned to site 0 (its data lives there).
	must(sc.AddJob("training", 1, []float64{4, 0}, []float64{30, 0}))
	show("training arrives (pinned):")

	// Progress reports do not churn the allocation...
	for i := 0; i < 3; i++ {
		_, err = sc.ReportProgress("etl", []float64{2, 2})
		must(err)
	}
	show("after etl progress:")

	// ...until a topology change: etl finishes its site-0 work.
	_, err = sc.ReportProgress("etl", []float64{8, 0})
	must(err)
	show("etl done at site 0:")

	// A weighted ad-hoc query arrives and leaves.
	must(sc.AddJob("adhoc", 2, []float64{2, 2}, nil))
	show("weighted adhoc arrives:")
	must(sc.RemoveJob("adhoc"))
	show("adhoc cancelled:")

	st := sc.Stats()
	fmt.Printf("\ncontroller stats: %d solves, %d cached queries, %d active jobs\n",
		st.Solves, st.Skipped, st.Jobs)
	fmt.Println("note how the pinned training job holds all of site 0 once the")
	fmt.Println("flexible ETL job can be served at site 1 alone.")
}

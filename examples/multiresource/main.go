// Multi-resource fairness (extension): tasks consume CPU *and* memory, and
// fairness is defined on dominant shares (DRF). This example reproduces
// the classic DRF trade on one cluster, then shows the aggregate
// (multi-site) variant compensating a pinned job across sites — the same
// story as the single-resource quickstart, lifted to vector resources.
//
// Run with: go run ./examples/multiresource
package main

import (
	"fmt"

	"repro/internal/multires"
)

func main() {
	// Classic DRF: 9 CPUs / 18 GB; job A tasks need <1 CPU, 4 GB>, job B
	// tasks <3 CPU, 1 GB>. The fair point gives A three tasks and B two,
	// equalizing dominant shares at 2/3.
	classic := &multires.Instance{
		SiteCapacity: [][]float64{{9, 18}},
		TaskUse:      [][]float64{{1, 4}, {3, 1}},
		TaskCount:    [][]float64{{100}, {100}},
	}
	var solver multires.Solver
	a, err := solver.AggregateDRF(classic)
	if err != nil {
		panic(err)
	}
	ds := a.DominantShares()
	fmt.Println("Classic single-cluster DRF:")
	fmt.Printf("  job A: %.2f tasks, dominant share %.3f (memory)\n", a.TotalTasks(0), ds[0])
	fmt.Printf("  job B: %.2f tasks, dominant share %.3f (CPU)\n", a.TotalTasks(1), ds[1])

	// Two datacenters; job P's data lives only in DC 0, job F is flexible.
	multi := &multires.Instance{
		SiteCapacity: [][]float64{{4, 8}, {4, 8}},
		TaskUse:      [][]float64{{1, 2}, {1, 2}},
		TaskCount: [][]float64{
			{100, 0},   // P: pinned
			{100, 100}, // F: flexible
		},
	}
	agg, err := solver.AggregateDRF(multi)
	if err != nil {
		panic(err)
	}
	ps, err := multires.PerSiteDRF(multi)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nTwo datacenters, pinned vs flexible (dominant shares):")
	fmt.Println("            per-site DRF   aggregate DRF")
	names := []string{"pinned", "flexible"}
	psDS, aggDS := ps.DominantShares(), agg.DominantShares()
	for j, name := range names {
		fmt.Printf("  %-9s %12.3f %15.3f\n", name, psDS[j], aggDS[j])
	}
	fmt.Println("\nAggregate DRF routes the flexible job to DC 1, restoring the")
	fmt.Println("pinned job's dominant share — the multi-resource form of AMF.")
}

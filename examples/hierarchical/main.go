// Hierarchical queues: capacity is divided across organizations by weight
// (independent of how many jobs each enqueues), then fairly within each
// organization — the queue semantics of YARN/Mesos, with AMF at both
// levels so cross-site compensation works for groups too.
//
// Run with: go run ./examples/hierarchical
package main

import (
	"fmt"

	"repro"
	"repro/internal/hierarchy"
)

func main() {
	// Two sites; org "research" floods the cluster with 4 jobs, org
	// "prod" has a single job (mostly at site 0) and double weight.
	in := &repro.Instance{
		SiteCapacity: []float64{4, 4},
		JobName: []string{
			"research-1", "research-2", "research-3", "research-4",
			"prod-main",
		},
		Demand: [][]float64{
			{4, 4},
			{4, 4},
			{4, 4},
			{4, 4},
			{4, 2}, // prod's data concentrates at site 0
		},
	}
	res, err := hierarchy.Allocate(nil, in, []hierarchy.Group{
		{Name: "research", Weight: 1, Jobs: []int{0, 1, 2, 3}},
		{Name: "prod", Weight: 2, Jobs: []int{4}},
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("group      weight  aggregate  envelope(site0, site1)")
	for g, name := range []string{"research", "prod"} {
		fmt.Printf("%-10s %6d %10.3f  (%.3f, %.3f)\n",
			name, g+1, res.GroupAggregate[g],
			res.GroupEnvelope[g][0], res.GroupEnvelope[g][1])
	}

	fmt.Println("\njob          aggregate")
	for j, name := range in.JobName {
		fmt.Printf("%-12s %9.3f\n", name, res.Alloc.Aggregate(j))
	}

	fmt.Println("\nprod's weight-2 queue holds 2/3 of the cluster with ONE job, while")
	fmt.Println("research's four jobs split the remaining third — flooding a queue")
	fmt.Println("with jobs does not increase its share. AMF at the group level")
	fmt.Println("serves prod's site-0-heavy demand from site 0 first.")
}

// Locality relaxation (extension): what if jobs could run away from their
// data at reduced efficiency gamma? This example shows the pitfall and the
// fix from experiment X3: applying plain AMF to a locality-relaxed demand
// matrix equalizes raw resource units and may serve a job entirely through
// near-worthless remote slots, while defining max-min fairness on *useful*
// rates (internal/spill) interpolates cleanly between the paper's pinned
// model (gamma=0) and full fluidity (gamma=1).
//
// Run with: go run ./examples/spillover
package main

import (
	"fmt"

	"repro"
	"repro/internal/spill"
)

func main() {
	// Three jobs pinned to one crowded site; a second site sits idle.
	in := &repro.Instance{
		SiteCapacity: []float64{1, 1},
		Demand: [][]float64{
			{1, 0},
			{1, 0},
			{1, 0},
		},
	}
	solver := repro.NewSolver()
	pinned, err := solver.AMF(in)
	if err != nil {
		panic(err)
	}
	fmt.Println("gamma   pinned   oblivious-min   useful-maxmin-min")
	for _, gamma := range []float64{0, 0.25, 0.5, 1} {
		sp := repro.Spillover{RemotePerSite: 1, Gamma: gamma}
		oblivious, err := solver.AMF(sp.Apply(in))
		if err != nil {
			panic(err)
		}
		aware, err := spill.Config{RemotePerSite: 1, Gamma: gamma}.MaxMinUseful(in)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-7.2f %-8.3f %-15.3f %.3f\n",
			gamma,
			minRate(repro.Spillover{Gamma: 1}.UsefulRates(in, pinned)),
			minRate(sp.UsefulRates(in, oblivious)),
			minRate(aware.Useful))
	}
	fmt.Println("\nThe oblivious relaxation can starve a job in useful terms even")
	fmt.Println("though raw aggregates are equal; useful-rate max-min never drops")
	fmt.Println("below the pinned model and converges to it as gamma -> 0.")
}

func minRate(rates []float64) float64 {
	m := rates[0]
	for _, r := range rates[1:] {
		if r < m {
			m = r
		}
	}
	return m
}

// Geo-distributed analytics: jobs span multiple datacenters because their
// input data is partitioned for locality. This example generates a skewed
// online workload over four datacenters, executes it in the fluid
// simulator under the per-site baseline, AMF, and AMF with the
// completion-time add-on, and reports the completion-time distributions —
// the paper's headline end-to-end comparison.
//
// Run with: go run ./examples/geodistributed
package main

import (
	"fmt"

	"repro"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const (
		datacenters = 4
		capacity    = 8.0 // slots per datacenter
		numJobs     = 120
		load        = 0.85
	)

	cfg := workload.StreamConfig{
		NumSites:         datacenters,
		NumJobs:          numJobs,
		Skew:             1.5, // each job's tasks concentrate on its own hot DC
		PerJobSkew:       true,
		TasksPerJobMean:  8,
		TaskDurationMean: 1,
		SitesPerJobMax:   3,
		Seed:             42,
	}
	cfg.Lambda = workload.LambdaForLoad(cfg, capacity*datacenters, load)
	jobs := workload.GenerateStream(cfg)

	caps := make([]float64, datacenters)
	for s := range caps {
		caps[s] = capacity
	}
	solver := &repro.Solver{SkipJCTRefine: true}

	fmt.Printf("%d jobs across %d datacenters at %.0f%% load (skew 1.5)\n\n",
		numJobs, datacenters, load*100)
	fmt.Println("policy         mean JCT   p95 JCT   p99 JCT   utilization")
	for _, p := range []sim.Policy{sim.PolicyPSMMF, sim.PolicyAMF, sim.PolicyAMFJCT} {
		res, err := sim.RunFluid(sim.FluidConfig{
			SiteCapacity: caps,
			Policy:       p,
			Solver:       solver,
		}, jobs)
		if err != nil {
			panic(err)
		}
		jcts := sim.JCTs(res.Jobs)
		fmt.Printf("%-13s %9.2f %9.2f %9.2f %12.3f\n",
			p, stats.Mean(jcts), stats.Percentile(jcts, 95),
			stats.Percentile(jcts, 99), res.Utilization)
	}

	fmt.Println("\nAMF balances each job's aggregate rate across datacenters, so")
	fmt.Println("jobs pinned to crowded DCs are compensated at their other DCs;")
	fmt.Println("the per-site baseline leaves them starved, inflating the tail.")
}

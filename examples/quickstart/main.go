// Quickstart: compute an Aggregate Max-min Fair (AMF) allocation for a
// tiny two-site cluster and compare it against the per-site max-min
// baseline.
//
// The instance is the paper's motivating situation in miniature: a
// "flexible" job with data at both sites shares site A with a "pinned" job
// whose data lives only there. Per-site fairness gives the flexible job
// 1.5 units in aggregate and the pinned job 0.5; AMF routes the flexible
// job to site B so both jobs end at 1.0.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	in := &repro.Instance{
		SiteName:     []string{"site-A", "site-B"},
		SiteCapacity: []float64{1, 1},
		JobName:      []string{"flexible", "pinned"},
		Demand: [][]float64{
			{1, 1}, // flexible: can use either site
			{1, 0}, // pinned: data locality ties it to site A
		},
	}

	solver := repro.NewSolver()
	amf, err := solver.AMF(in)
	if err != nil {
		panic(err)
	}
	baseline := repro.PerSiteMMF(in)

	fmt.Println("          per-site MMF     AMF")
	for j, name := range in.JobName {
		fmt.Printf("%-9s %12.3f %7.3f\n", name, baseline.Aggregate(j), amf.Aggregate(j))
	}

	fmt.Println("\nAMF per-site split:")
	for j, name := range in.JobName {
		for s, site := range in.SiteName {
			if amf.Share[j][s] > 0 {
				fmt.Printf("  %-9s gets %.3f at %s\n", name, amf.Share[j][s], site)
			}
		}
	}

	// The fairness properties the paper proves hold for every AMF
	// allocation; check them on this one.
	fmt.Println("\nProperties:")
	fmt.Println("  pareto efficient: ", repro.IsParetoEfficient(amf, 1e-6))
	_, unfair := repro.AggregateMaxMinViolation(amf, 1e-4)
	fmt.Println("  aggregate max-min:", !unfair)
	fmt.Println("  envy pairs:       ", repro.EnvyPairs(amf, 1e-6))
}

// Strategy-proofness: can a job gain resources by lying about its demands?
// Under AMF the answer is no — this example probes the allocator with
// hundreds of misreports (scaling, exaggerating, concentrating,
// fabricating locality) and shows that none increases the liar's useful
// allocation. As a control, the same prober run against a naive
// "proportional to reported demand" policy finds large profitable lies.
//
// Run with: go run ./examples/strategyproof
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	// A contested cluster: three tenants share two scarce sites.
	in := &repro.Instance{
		SiteCapacity: []float64{2, 1},
		JobName:      []string{"honest-a", "honest-b", "tempted"},
		Demand: [][]float64{
			{2, 1},
			{1, 1},
			{2, 0.5},
		},
	}
	rng := rand.New(rand.NewSource(2019))
	solver := repro.NewSolver()

	amf := func(in *repro.Instance) (*repro.Allocation, error) { return solver.AMF(in) }
	outcomes, err := repro.ProbeStrategyProofness(in, amf, 200, rng)
	if err != nil {
		panic(err)
	}
	fmt.Println("AMF under misreporting:")
	for _, o := range outcomes {
		fmt.Printf("  %-9s truthful=%.4f best-lie=%.4f gain=%+.2g\n",
			in.JobName[o.Job], o.TruthUseful, o.BestUseful, o.Gain)
	}

	// Control: proportional-to-report is trivially gameable.
	proportional := func(in *repro.Instance) (*repro.Allocation, error) {
		a := repro.NewAllocation(in)
		for s := range in.SiteCapacity {
			var total float64
			for j := range in.Demand {
				total += in.Demand[j][s]
			}
			if total == 0 {
				continue
			}
			for j := range in.Demand {
				share := in.SiteCapacity[s] * in.Demand[j][s] / total
				if share > in.Demand[j][s] {
					share = in.Demand[j][s]
				}
				a.Share[j][s] = share
			}
		}
		return a, nil
	}
	outcomes, err = repro.ProbeStrategyProofness(in, proportional, 200, rng)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nproportional-to-report under misreporting (control):")
	for _, o := range outcomes {
		fmt.Printf("  %-9s truthful=%.4f best-lie=%.4f gain=%+.2g\n",
			in.JobName[o.Job], o.TruthUseful, o.BestUseful, o.Gain)
	}
	fmt.Println("\nAMF gains are ~0 (within numerical tolerance); the naive")
	fmt.Println("policy rewards exaggeration — exactly the paper's claim.")
}

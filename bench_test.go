// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (experiments E1-E10; see DESIGN.md for the mapping). Each
// benchmark executes the corresponding experiment end to end — workload
// generation, all policies, all metrics — and reports the rendered
// table/series through b.Log on the first iteration, so that
//
//	go test -bench=E -benchtime=1x -v
//
// regenerates the full evaluation. Microbenchmarks for the allocator and
// the max-flow core follow below.
package repro_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/maxflow"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	opt := experiments.Options{}
	if testing.Short() {
		opt.Quick = true
	}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
		}
	}
}

// BenchmarkE1AllocationBalance regenerates Fig E1a/E1b: Jain index and
// min/max ratio of aggregate allocations vs. workload skew.
func BenchmarkE1AllocationBalance(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2AllocationCDF regenerates Fig E2: the CDF of aggregate
// allocations under high skew.
func BenchmarkE2AllocationCDF(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3CompletionTime regenerates Fig E3a/E3b: batch job completion
// times vs. skew under each policy.
func BenchmarkE3CompletionTime(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4Properties regenerates Table E4: empirical verification of
// the fairness properties.
func BenchmarkE4Properties(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5SharingIncentive regenerates Fig E5a-E5c: sharing-incentive
// violations on the endowment family and organically.
func BenchmarkE5SharingIncentive(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6EnhancedCost regenerates Fig E6a-E6c: the price of the
// sharing-incentive enhancement.
func BenchmarkE6EnhancedCost(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7AddonBenefit regenerates Fig E7a-E7c: completion-time stretch
// with and without the add-on.
func BenchmarkE7AddonBenefit(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8OnlineSimulation regenerates Table E8: online JCT and
// utilization vs. offered load.
func BenchmarkE8OnlineSimulation(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9Scalability regenerates Table E9: allocator wall time,
// Newton vs. bisection.
func BenchmarkE9Scalability(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10SlotFluidCrossCheck regenerates Table E10: slot-granular vs.
// fluid simulator agreement.
func BenchmarkE10SlotFluidCrossCheck(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkX1MultiResource regenerates Fig X1a/X1b: the multi-resource
// (DRF) extension beyond the paper.
func BenchmarkX1MultiResource(b *testing.B) { benchExperiment(b, "X1") }

// BenchmarkX2ReallocAblation regenerates Fig X2: the re-allocation
// frequency (staleness) ablation.
func BenchmarkX2ReallocAblation(b *testing.B) { benchExperiment(b, "X2") }

// BenchmarkX3LocalityRelaxation regenerates Fig X3a/X3b: the remote
// spillover (locality relaxation) extension.
func BenchmarkX3LocalityRelaxation(b *testing.B) { benchExperiment(b, "X3") }

// --- Microbenchmarks -----------------------------------------------------

func benchInstance(n, m int, skew float64) *core.Instance {
	return workload.Generate(workload.Config{
		NumJobs:      n,
		NumSites:     m,
		SiteCapacity: 1,
		Skew:         skew,
		PerJobSkew:   true,
		MeanDemand:   3 * float64(m) / float64(n),
		SizeDist:     workload.SizeBoundedPareto,
		Seed:         uint64(n)*31 + uint64(m),
	})
}

func benchmarkAMF(b *testing.B, n, m int, method core.Method) {
	in := benchInstance(n, m, 1.2)
	sv := &core.Solver{Method: method}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.AMF(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAMFNewton100x20(b *testing.B) { benchmarkAMF(b, 100, 20, core.MethodNewton) }
func BenchmarkAMFNewton400x40(b *testing.B) { benchmarkAMF(b, 400, 40, core.MethodNewton) }
func BenchmarkAMFBisect100x20(b *testing.B) { benchmarkAMF(b, 100, 20, core.MethodBisect) }
func BenchmarkAMFBisect400x40(b *testing.B) { benchmarkAMF(b, 400, 40, core.MethodBisect) }

func BenchmarkEnhancedAMF100x20(b *testing.B) {
	in := benchInstance(100, 20, 1.2)
	sv := core.NewSolver()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.EnhancedAMF(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerSiteMMF100x20(b *testing.B) {
	in := benchInstance(100, 20, 1.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.PerSiteMMF(in)
	}
}

func BenchmarkOptimizeJCT60x10(b *testing.B) {
	in := benchInstance(60, 10, 1.2)
	sv := core.NewSolver()
	base, err := sv.AMF(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.OptimizeJCT(base); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSolveSparse solves a block-diagonal instance (64 components of
// 16 jobs over 4 sites each) repeatedly with one warm solver. Monolithic
// forces the single-network path; the decomposed path solves the
// components in parallel, so the Mono/Decomposed ratio is the
// decomposition win tracked by BENCH runs.
func benchSolveSparse(b *testing.B, monolithic bool) {
	in := workload.GenerateSparse(workload.SparseConfig{
		Components:        64,
		JobsPerComponent:  16,
		SitesPerComponent: 4,
		Seed:              7,
	})
	sv := &core.Solver{SkipJCTRefine: true, Monolithic: monolithic}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.AMF(in); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := sv.LastStats(); !monolithic {
		b.ReportMetric(float64(st.Components), "components")
		b.ReportMetric(st.Speedup, "speedup")
	}
}

func BenchmarkSolveSparseMono(b *testing.B)       { benchSolveSparse(b, true) }
func BenchmarkSolveSparseDecomposed(b *testing.B) { benchSolveSparse(b, false) }

// ringDemand chains job j to sites j and j+1 (mod sites), coupling the
// whole instance into one component.
func ringDemand(j, sites int) []float64 {
	demand := make([]float64, sites)
	demand[j%sites] = 2
	demand[(j+1)%sites] = 1
	return demand
}

// pairedDemand confines job j to the disjoint site pair 2k/2k+1, so the
// instance splits into sites/2 independent components.
func pairedDemand(j, sites int) []float64 {
	demand := make([]float64, sites)
	pair := 2 * (j % (sites / 2))
	demand[pair] = 2
	demand[pair+1] = 1
	return demand
}

// benchServe measures serving-engine mutation throughput under 8
// concurrent mutators and 8 polling readers. Batched uses group commit
// (a batch the size of the mutator pool, bounded by a 1ms window);
// unbatched solves once per mutation. ns/op is per mutation, so the
// batched/unbatched ratio is the group-commit win tracked by BENCH runs.
func benchServe(b *testing.B, maxBatch int, window time.Duration, demandFor func(j, sites int) []float64) {
	const (
		mutators = 8
		readers  = 8
		jobs     = 64
		sites    = 8
	)
	caps := make([]float64, sites)
	for s := range caps {
		caps[s] = jobs / sites
	}
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: caps})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := serve.New(sc, serve.Config{MaxBatch: maxBatch, BatchWindow: window})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	for j := 0; j < jobs; j++ {
		if err := eng.AddJob(context.Background(), fmt.Sprintf("job-%d", j), 1, demandFor(j, sites), nil); err != nil {
			b.Fatal(err)
		}
	}

	var stop atomic.Bool
	var readerWG sync.WaitGroup
	var readOps atomic.Int64
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for !stop.Load() {
				_ = eng.Current()
				readOps.Add(1)
				time.Sleep(250 * time.Microsecond)
			}
		}()
	}

	per := (b.N + mutators - 1) / mutators
	b.ResetTimer()
	var mutWG sync.WaitGroup
	for w := 0; w < mutators; w++ {
		mutWG.Add(1)
		go func(w int) {
			defer mutWG.Done()
			for i := 0; i < per; i++ {
				id := fmt.Sprintf("job-%d", (w+i*mutators)%jobs)
				// Cycle weights so every mutation dirties the allocation.
				weight := 1 + float64((i*7+w*3)%13)/13
				if err := eng.UpdateWeight(context.Background(), id, weight); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	mutWG.Wait()
	b.StopTimer()
	stop.Store(true)
	readerWG.Wait()
	st := sc.Stats()
	b.ReportMetric(float64(mutators*per)/float64(st.Solves), "mutations/solve")
	b.ReportMetric(float64(readOps.Load())/b.Elapsed().Seconds(), "reads/s")
}

// BenchmarkServeBatched is the engine with group commit enabled.
func BenchmarkServeBatched(b *testing.B) { benchServe(b, 8, time.Millisecond, ringDemand) }

// BenchmarkServeUnbatched solves once per mutation (the pre-engine
// behavior) for comparison.
func BenchmarkServeUnbatched(b *testing.B) { benchServe(b, 1, 0, ringDemand) }

// BenchmarkServeBatchedDecomposed is group commit over a multi-component
// workload, so each batch re-solve takes the decomposed-parallel path.
func BenchmarkServeBatchedDecomposed(b *testing.B) {
	benchServe(b, 8, time.Millisecond, pairedDemand)
}

// benchEngineTarget adapts the context-aware engine to the ctx-less churn
// replay interface.
type benchEngineTarget struct{ eng *serve.Engine }

func (t benchEngineTarget) AddJob(id string, weight float64, demand, work []float64) error {
	return t.eng.AddJob(context.Background(), id, weight, demand, work)
}

func (t benchEngineTarget) RemoveJob(id string) error {
	return t.eng.RemoveJob(context.Background(), id)
}

func (t benchEngineTarget) UpdateWeight(id string, weight float64) error {
	return t.eng.UpdateWeight(context.Background(), id, weight)
}

func (t benchEngineTarget) ReportProgress(id string, done []float64) (bool, error) {
	return t.eng.ReportProgress(context.Background(), id, done)
}

// benchServeChurn drives a generated churn stream — component-local
// mutations over a 64-component sparse instance — through an unbatched
// engine, so ns/op is the per-mutation commit latency (enqueue → solve →
// snapshot publish). The incremental variant re-solves only the mutated
// component and splices cached rows for the rest; the full-resolve
// variant re-solves every component per commit.
func benchServeChurn(b *testing.B, disableIncremental bool) {
	ch := workload.GenerateChurn(workload.ChurnConfig{
		Sparse:    workload.SparseConfig{Components: 64, JobsPerComponent: 16, SitesPerComponent: 4, Seed: 7},
		Mutations: 4096,
		Seed:      11,
	})
	sc, err := scheduler.New(scheduler.Config{
		SiteCapacity:       ch.Inst.SiteCapacity,
		DisableIncremental: disableIncremental,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Populate before the engine exists: the adds stay lazy and the
	// engine's initial publish performs the single warm-up solve.
	if err := ch.Populate(sc); err != nil {
		b.Fatal(err)
	}
	eng, err := serve.New(sc, serve.Config{MaxBatch: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Cyclic replay can re-add a live transient or re-remove an
		// evicted one; those rejections are expected and free.
		if err := ch.Ops[i%len(ch.Ops)].Apply(benchEngineTarget{eng: eng}); err != nil &&
			!errors.Is(err, scheduler.ErrUnknownJob) &&
			!errors.Is(err, scheduler.ErrDuplicateJob) {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := sc.Stats()
	b.ReportMetric(float64(st.LastReused), "reused")
	b.ReportMetric(float64(st.LastResolved), "resolved")
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		b.ReportMetric(float64(st.CacheHits)/float64(total), "hit_ratio")
	}
}

// BenchmarkServeChurnIncremental commits single-component mutations with
// dirty-component tracking and the fingerprint cache enabled.
func BenchmarkServeChurnIncremental(b *testing.B) { benchServeChurn(b, false) }

// BenchmarkServeChurnFullResolve is the same stream with incremental
// solving disabled: every commit re-solves the whole instance.
func BenchmarkServeChurnFullResolve(b *testing.B) { benchServeChurn(b, true) }

func BenchmarkMaxFlowBipartite(b *testing.B) {
	in := benchInstance(200, 20, 1.2)
	n, m := in.NumJobs(), in.NumSites()
	g := maxflow.New(2 + n + m)
	src, sink := 0, 1+n+m
	for j := 0; j < n; j++ {
		g.AddEdge(src, 1+j, in.TotalDemand(j))
		for s := 0; s < m; s++ {
			if d := in.Demand[j][s]; d > 0 {
				g.AddEdge(1+j, 1+n+s, d)
			}
		}
	}
	for s := 0; s < m; s++ {
		g.AddEdge(1+n+s, sink, in.SiteCapacity[s])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset()
		g.MaxFlow(src, sink)
	}
}

func BenchmarkFluidSimulation(b *testing.B) {
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 4, Lambda: 2, NumJobs: 60, Skew: 1.2, PerJobSkew: true,
		TasksPerJobMean: 6, SitesPerJobMax: 3, Seed: 5,
	})
	solver := &core.Solver{SkipJCTRefine: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunFluid(sim.FluidConfig{
			SiteCapacity: []float64{4, 4, 4, 4},
			Policy:       sim.PolicyAMF,
			Solver:       solver,
		}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSlotSimulation(b *testing.B) {
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 4, Lambda: 2, NumJobs: 40, Skew: 1.2, PerJobSkew: true,
		TasksPerJobMean: 6, SitesPerJobMax: 3, Seed: 5,
	})
	solver := &core.Solver{SkipJCTRefine: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunSlots(sim.SlotConfig{
			SlotsPerSite: []int{4, 4, 4, 4},
			Policy:       sim.PolicyAMF,
			Solver:       solver,
		}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

package repro_test

import (
	"fmt"

	"repro"
)

// The motivating scenario: a job pinned to a contested site is compensated
// nowhere under per-site fairness; AMF balances aggregates instead.
func Example() {
	in := &repro.Instance{
		SiteCapacity: []float64{1, 1},
		Demand: [][]float64{
			{1, 1}, // flexible job
			{1, 0}, // pinned job
		},
	}
	alloc, err := repro.NewSolver().AMF(in)
	if err != nil {
		panic(err)
	}
	baseline := repro.PerSiteMMF(in)
	fmt.Printf("per-site: flexible=%.1f pinned=%.1f\n",
		baseline.Aggregate(0), baseline.Aggregate(1))
	fmt.Printf("AMF:      flexible=%.1f pinned=%.1f\n",
		alloc.Aggregate(0), alloc.Aggregate(1))
	// Output:
	// per-site: flexible=1.5 pinned=0.5
	// AMF:      flexible=1.0 pinned=1.0
}

// Weighted max-min fairness: shares scale with job weights.
func ExampleSolver_AMF_weighted() {
	in := &repro.Instance{
		SiteCapacity: []float64{6},
		Demand:       [][]float64{{10}, {10}},
		Weight:       []float64{1, 2},
	}
	alloc, err := repro.NewSolver().AMF(in)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f %.0f\n", alloc.Aggregate(0), alloc.Aggregate(1))
	// Output: 2 4
}

// Enhanced AMF guarantees every job its isolated equal share; plain AMF
// can fall short on adversarial instances.
func ExampleSolver_EnhancedAMF() {
	in := &repro.Instance{
		SiteCapacity: []float64{10, 0.2},
		Demand: [][]float64{
			{0.9, 1}, // endowed job: private site + contested claim
			{0, 1},
			{0, 1},
		},
	}
	sv := repro.NewSolver()
	amf, _ := sv.AMF(in)
	enh, _ := sv.EnhancedAMF(in)
	es := repro.EqualShares(in)
	fmt.Printf("equal share %.4f, AMF %.4f, enhanced %.4f\n",
		es[0], amf.Aggregate(0), enh.Aggregate(0))
	// Output: equal share 0.9667, AMF 0.9000, enhanced 0.9667
}

// EqualShares is the sharing-incentive benchmark: what each job would get
// from an equal split of every site.
func ExampleEqualShares() {
	in := &repro.Instance{
		SiteCapacity: []float64{4, 2},
		Demand: [][]float64{
			{4, 2},
			{1, 0},
		},
	}
	fmt.Println(repro.EqualShares(in))
	// Output: [3 1]
}

// The completion-time add-on rebalances each job's per-site split without
// changing its fair aggregate.
func ExampleSolver_AMFWithJCT() {
	in := &repro.Instance{
		SiteCapacity: []float64{1, 1},
		Demand: [][]float64{
			{1, 1},
			{1, 1},
		},
	}
	alloc, err := repro.NewSolver().AMFWithJCT(in)
	if err != nil {
		panic(err)
	}
	fmt.Printf("aggregates: %.1f %.1f, stretch: %.2f %.2f\n",
		alloc.Aggregate(0), alloc.Aggregate(1),
		alloc.Stretch(0), alloc.Stretch(1))
	// Output: aggregates: 1.0 1.0, stretch: 1.00 1.00
}

// Package repro is a reproduction of "On Max-min Fair Resource Allocation
// for Distributed Job Execution" (Guan, Li, Tang — ICPP 2019): Aggregate
// Max-min Fairness (AMF) for jobs whose work is pinned across multiple
// sites by data locality.
//
// This root package is the public API surface. It re-exports the core
// types and allocators so that downstream users need a single import:
//
//	in := &repro.Instance{
//	    SiteCapacity: []float64{4, 4},
//	    Demand:       [][]float64{{4, 1}, {2, 3}},
//	}
//	alloc, err := repro.NewSolver().AMF(in)
//
// The allocators:
//
//   - Solver.AMF — aggregate max-min fairness: the unique allocation whose
//     per-job aggregate (summed across sites) vector is max-min fair. It is
//     Pareto efficient, envy-free and strategy-proof.
//   - Solver.EnhancedAMF — additionally floors every job at its isolated
//     equal share, restoring the sharing-incentive property that plain AMF
//     can violate.
//   - Solver.AMFWithJCT / Solver.OptimizeJCT — the completion-time add-on:
//     redistributes each job's aggregate across sites to minimize
//     completion-time stretch without touching the fair aggregates.
//   - PerSiteMMF — the per-site max-min baseline the paper compares
//     against.
//
// Verification helpers (EqualShares, IsParetoEfficient, EnvyPairs,
// SharingIncentiveViolations, ProbeStrategyProofness, …) check the paper's
// fairness properties on concrete allocations.
//
// The simulators, workload generators and the experiment suite live under
// internal/; the cmd/ tools (amf-solve, amf-sim, amf-bench, amf-gen)
// expose them on the command line, and the root-level benchmarks
// (bench_test.go) regenerate every table and figure of the evaluation.
package repro

import (
	"math/rand"

	"repro/internal/core"
)

// Instance describes a multi-site allocation problem. See core.Instance.
type Instance = core.Instance

// Allocation is a per-job, per-site assignment. See core.Allocation.
type Allocation = core.Allocation

// Solver computes AMF allocations. See core.Solver.
type Solver = core.Solver

// Method selects the bottleneck-finding algorithm.
type Method = core.Method

// Bottleneck-finder choices for Solver.Method.
const (
	MethodNewton = core.MethodNewton
	MethodBisect = core.MethodBisect
)

// AllocatorFunc computes an allocation for an instance.
type AllocatorFunc = core.AllocatorFunc

// MisreportOutcome reports a strategy-proofness probe for one job.
type MisreportOutcome = core.MisreportOutcome

// Diagnostics explains a solve: the cascade of bottleneck rounds. See
// Solver.AMFDiag and Solver.EnhancedAMFDiag.
type Diagnostics = core.Diagnostics

// FreezeRound is one round of a solve's bottleneck cascade.
type FreezeRound = core.FreezeRound

// JobLimit reports what capped a job (demand vs a site bottleneck).
type JobLimit = core.JobLimit

// JobLimit values.
const (
	LimitUnknown    = core.LimitUnknown
	LimitDemand     = core.LimitDemand
	LimitBottleneck = core.LimitBottleneck
)

// Spillover models locality relaxation at efficiency Gamma; see
// core.Spillover (and internal/spill for useful-rate max-min).
type Spillover = core.Spillover

// NewSolver returns a solver with default settings (Newton bottleneck
// finder, 1e-9 relative tolerance).
func NewSolver() *Solver { return core.NewSolver() }

// NewAllocation returns an all-zero allocation for the instance.
func NewAllocation(in *Instance) *Allocation { return core.NewAllocation(in) }

// PerSiteMMF computes the per-site max-min fair baseline.
func PerSiteMMF(in *Instance) *Allocation { return core.PerSiteMMF(in) }

// EqualShares returns each job's isolated equal share, the
// sharing-incentive benchmark.
func EqualShares(in *Instance) []float64 { return core.EqualShares(in) }

// MaxTotalAllocation reports the largest total any feasible allocation can
// hand out.
func MaxTotalAllocation(in *Instance) float64 { return core.MaxTotalAllocation(in) }

// IsParetoEfficient reports whether the allocation is Pareto efficient
// within tol.
func IsParetoEfficient(a *Allocation, tol float64) bool { return core.IsParetoEfficient(a, tol) }

// AggregateMaxMinViolation probes the allocation's aggregate vector for a
// max-min fairness violation.
func AggregateMaxMinViolation(a *Allocation, delta float64) (int, bool) {
	return core.AggregateMaxMinViolation(a, delta)
}

// EnvyPairs returns the (envier, envied) pairs in the allocation.
func EnvyPairs(a *Allocation, tol float64) [][2]int { return core.EnvyPairs(a, tol) }

// SharingIncentiveViolations returns jobs whose aggregate falls short of
// their isolated equal share, with the shortfalls.
func SharingIncentiveViolations(a *Allocation, tol float64) ([]int, []float64) {
	return core.SharingIncentiveViolations(a, tol)
}

// UsefulAllocation measures what job j obtains from an allocation given
// its true demands.
func UsefulAllocation(a *Allocation, j int, trueDemand []float64) float64 {
	return core.UsefulAllocation(a, j, trueDemand)
}

// ProbeStrategyProofness searches for profitable demand misreports under
// the given allocator.
func ProbeStrategyProofness(in *Instance, alloc AllocatorFunc, trials int, rng *rand.Rand) ([]MisreportOutcome, error) {
	return core.ProbeStrategyProofness(in, alloc, trials, rng)
}
